package gaa

import (
	"strings"

	"gaaapi/internal/eacl"
)

// globTrie indexes a set of '*'-glob patterns by their literal prefix
// (everything before the first star) so that one walk over a subject
// string finds every matching pattern. The compiled decision engine
// uses two of these per program — one over the rights' defining
// authorities, one over the right values — replacing the per-entry
// eacl.MatchRight globbing of the interpreted scan.
//
// Soundness rests on a prefix decomposition of the glob language
// (only '*' is a metacharacter; see eacl.Glob): for a pattern
// lit+rest where lit is literal and rest is empty or starts with '*',
//
//	Glob(lit+rest, s)  ⇔  HasPrefix(s, lit) && Glob(rest, s[len(lit):])
//
// Fully literal patterns therefore match exactly the subject equal to
// them (reported at the terminal node when the subject is exhausted),
// and starred patterns match iff the walk reaches the node of their
// literal prefix and eacl.Glob accepts the remaining suffix. The
// cover_test.go cross-checks insert/match against eacl.Glob and the
// GlobCovers inclusion DP over generated pattern sets.
type globTrie struct {
	nodes []trieNode
}

type trieNode struct {
	// labels/targets are the parallel edge arrays (few edges per node;
	// linear scan beats a map here).
	labels  []byte
	targets []int32
	// exact holds the ids of fully-literal patterns ending at this node.
	exact []int32
	// tails holds patterns whose literal prefix ends here; rest is the
	// remainder starting with '*'.
	tails []trieTail
}

type trieTail struct {
	id   int32
	rest string
}

func (n *trieNode) next(c byte) int32 {
	for i, l := range n.labels {
		if l == c {
			return n.targets[i]
		}
	}
	return -1
}

// insert adds a pattern under id. Patterns should be canonicalized
// with collapseStars first so equivalent patterns share trie paths.
func (t *globTrie) insert(pattern string, id int32) {
	if len(t.nodes) == 0 {
		t.nodes = append(t.nodes, trieNode{})
	}
	lit := pattern
	if i := strings.IndexByte(pattern, '*'); i >= 0 {
		lit = pattern[:i]
	}
	n := int32(0)
	for j := 0; j < len(lit); j++ {
		next := t.nodes[n].next(lit[j])
		if next < 0 {
			next = int32(len(t.nodes))
			t.nodes = append(t.nodes, trieNode{})
			t.nodes[n].labels = append(t.nodes[n].labels, lit[j])
			t.nodes[n].targets = append(t.nodes[n].targets, next)
		}
		n = next
	}
	if len(lit) == len(pattern) {
		t.nodes[n].exact = append(t.nodes[n].exact, id)
	} else {
		t.nodes[n].tails = append(t.nodes[n].tails, trieTail{id: id, rest: pattern[len(lit):]})
	}
}

// match walks the subject and sets the bit of every matching pattern
// id in bits. It allocates nothing.
func (t *globTrie) match(s string, bits []uint64) {
	if len(t.nodes) == 0 {
		return
	}
	n := int32(0)
	for i := 0; ; i++ {
		node := &t.nodes[n]
		for _, tl := range node.tails {
			if eacl.Glob(tl.rest, s[i:]) {
				bits[tl.id>>6] |= 1 << (uint(tl.id) & 63)
			}
		}
		if i == len(s) {
			for _, id := range node.exact {
				bits[id>>6] |= 1 << (uint(id) & 63)
			}
			return
		}
		n = node.next(s[i])
		if n < 0 {
			return
		}
	}
}

// collapseStars canonicalizes a glob pattern by collapsing runs of
// consecutive stars into one. The languages are identical — a star
// matches any (possibly empty) substring, so extra stars add nothing —
// which the eacl.GlobCovers inclusion DP confirms in both directions
// (GlobCovers(collapsed, p) && GlobCovers(p, collapsed); pinned by
// cover_test.go). Canonical patterns make equal-language entries share
// one trie id.
func collapseStars(p string) string {
	if !strings.Contains(p, "**") {
		return p
	}
	var b strings.Builder
	b.Grow(len(p))
	prevStar := false
	for i := 0; i < len(p); i++ {
		if p[i] == '*' {
			if prevStar {
				continue
			}
			prevStar = true
		} else {
			prevStar = false
		}
		b.WriteByte(p[i])
	}
	return b.String()
}

func growBits(bits []uint64, n int) []uint64 {
	words := (n + 63) / 64
	if cap(bits) < words {
		return make([]uint64, words)
	}
	return bits[:words]
}

func clearBits(bits []uint64) {
	for i := range bits {
		bits[i] = 0
	}
}

func bitGet(bits []uint64, i int32) bool {
	return bits[i>>6]&(1<<(uint(i)&63)) != 0
}
