//go:build !race

package gaa

const raceEnabled = false
