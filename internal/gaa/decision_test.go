package gaa

import (
	"testing"
	"testing/quick"
)

func TestDecisionString(t *testing.T) {
	tests := []struct {
		d    Decision
		want string
	}{
		{Yes, "yes"}, {No, "no"}, {Maybe, "maybe"}, {Decision(9), "Decision(9)"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.d), got, tt.want)
		}
	}
}

func TestConjoin(t *testing.T) {
	tests := []struct {
		a, b, want Decision
	}{
		{Yes, Yes, Yes},
		{Yes, No, No},
		{Yes, Maybe, Maybe},
		{No, Maybe, No},
		{No, No, No},
		{Maybe, Maybe, Maybe},
		{0, Yes, Yes},
		{No, 0, No},
		{0, 0, 0},
	}
	for _, tt := range tests {
		if got := Conjoin(tt.a, tt.b); got != tt.want {
			t.Errorf("Conjoin(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestDisjoin(t *testing.T) {
	tests := []struct {
		a, b, want Decision
	}{
		{Yes, Yes, Yes},
		{Yes, No, Yes},
		{Yes, Maybe, Yes},
		{No, Maybe, Maybe},
		{No, No, No},
		{Maybe, Maybe, Maybe},
		{0, No, No},
		{Maybe, 0, Maybe},
	}
	for _, tt := range tests {
		if got := Disjoin(tt.a, tt.b); got != tt.want {
			t.Errorf("Disjoin(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

// Lattice properties of the combiners, checked with testing/quick over
// the valid decision domain.
func TestCombinerProperties(t *testing.T) {
	domain := []Decision{Yes, No, Maybe}
	clamp := func(x uint8) Decision { return domain[int(x)%len(domain)] }

	commutative := func(x, y uint8) bool {
		a, b := clamp(x), clamp(y)
		return Conjoin(a, b) == Conjoin(b, a) && Disjoin(a, b) == Disjoin(b, a)
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Errorf("commutativity: %v", err)
	}

	associative := func(x, y, z uint8) bool {
		a, b, c := clamp(x), clamp(y), clamp(z)
		return Conjoin(Conjoin(a, b), c) == Conjoin(a, Conjoin(b, c)) &&
			Disjoin(Disjoin(a, b), c) == Disjoin(a, Disjoin(b, c))
	}
	if err := quick.Check(associative, nil); err != nil {
		t.Errorf("associativity: %v", err)
	}

	idempotent := func(x uint8) bool {
		a := clamp(x)
		return Conjoin(a, a) == a && Disjoin(a, a) == a
	}
	if err := quick.Check(idempotent, nil); err != nil {
		t.Errorf("idempotence: %v", err)
	}

	// Identity of the zero value.
	identity := func(x uint8) bool {
		a := clamp(x)
		return Conjoin(0, a) == a && Conjoin(a, 0) == a &&
			Disjoin(0, a) == a && Disjoin(a, 0) == a
	}
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("identity: %v", err)
	}

	// Absorption: No dominates conjunction, Yes dominates disjunction.
	absorption := func(x uint8) bool {
		a := clamp(x)
		return Conjoin(No, a) == No && Disjoin(Yes, a) == Yes
	}
	if err := quick.Check(absorption, nil); err != nil {
		t.Errorf("absorption: %v", err)
	}
}
