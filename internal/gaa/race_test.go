package gaa

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"gaaapi/internal/eacl"
)

// TestConcurrentDecisionStress hammers one API from many goroutines
// while policies mutate and the cache is invalidated underneath them.
// Run under -race it proves the read-mostly design sound: no torn
// reads (every answer is a coherent Yes/No/Maybe from some published
// policy revision) and monotonic cache statistics.
func TestConcurrentDecisionStress(t *testing.T) {
	const (
		workers = 32
		iters   = 300
	)

	a := New(WithPolicyCache(8))
	a.RegisterFunc("sel_yes", AuthorityAny, func(context.Context, eacl.Condition, *Request) Outcome {
		return MetOutcome(ClassSelector, "")
	})

	src := NewMemorySource()
	if err := src.AddPolicy("*", "pos_access_right apache *\npre_cond_sel_yes local\n"); err != nil {
		t.Fatal(err)
	}
	local := []PolicySource{src}

	var (
		readers sync.WaitGroup
		aux     sync.WaitGroup
		stop    atomic.Bool
		grant   atomic.Uint64
		deny    atomic.Uint64
	)

	// Readers: full decision path over a rotating set of objects, so
	// lookups spread across cache shards and evictions fire (cache is
	// smaller than the object set).
	for w := 0; w < workers; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			req := NewRequest("apache", "GET /index.html")
			var ans Answer
			for i := 0; i < iters; i++ {
				object := fmt.Sprintf("/obj/%d", (w+i)%16)
				p, err := a.GetObjectPolicyInfo(object, nil, local)
				if err != nil {
					t.Errorf("GetObjectPolicyInfo: %v", err)
					return
				}
				if err := a.CheckAuthorizationInto(context.Background(), p, req, &ans); err != nil {
					t.Errorf("CheckAuthorizationInto: %v", err)
					return
				}
				switch ans.Decision {
				case Yes:
					grant.Add(1)
				case No:
					deny.Add(1)
				default:
					// A torn policy read would surface as an incoherent
					// Maybe: both published revisions decide every
					// request.
					t.Errorf("incoherent decision %v for %s", ans.Decision, object)
					return
				}
			}
		}(w)
	}

	// Writer: publishes additional policy entries (MemorySource.Add
	// appends), bumping the source revision each time so cached entries
	// keep going stale. Bounded: each append also grows every
	// subsequently composed policy.
	aux.Add(1)
	go func() {
		defer aux.Done()
		texts := []string{
			"neg_access_right apache *\npre_cond_sel_yes local\n",
			"pos_access_right apache *\npre_cond_sel_yes local\n",
		}
		for i := 0; i < 64 && !stop.Load(); i++ {
			if err := src.AddPolicy("*", texts[i%2]); err != nil {
				t.Errorf("AddPolicy: %v", err)
				return
			}
		}
	}()

	// Invalidator: concurrently drops the whole cache.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for !stop.Load() {
			a.InvalidateCache()
		}
	}()

	// Stats poller: counters must never move backwards while readers,
	// the writer, and the invalidator run.
	aux.Add(1)
	statsErr := make(chan error, 1)
	go func() {
		defer aux.Done()
		var last CacheStats
		for !stop.Load() {
			cur := a.CacheStats()
			if cur.Hits < last.Hits || cur.Misses < last.Misses || cur.Evictions < last.Evictions {
				select {
				case statsErr <- fmt.Errorf("stats moved backwards: %+v -> %+v", last, cur):
				default:
				}
				return
			}
			last = cur
		}
	}()

	// Wait for the readers, then release the background loops.
	readers.Wait()
	stop.Store(true)
	aux.Wait()

	select {
	case err := <-statsErr:
		t.Fatal(err)
	default:
	}

	if total := grant.Load() + deny.Load(); total != workers*iters {
		t.Errorf("decisions = %d, want %d", total, workers*iters)
	}
	st := a.CacheStats()
	if st.Hits+st.Misses == 0 {
		t.Error("cache saw no traffic")
	}
	t.Logf("grants=%d denies=%d stats=%+v", grant.Load(), deny.Load(), st)
}
