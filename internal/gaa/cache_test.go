package gaa

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gaaapi/internal/eacl"
)

func TestPolicyCacheHitsAndMisses(t *testing.T) {
	a := New(WithPolicyCache(16))
	src := NewMemorySource()
	if err := src.AddPolicy("*", "pos_access_right apache *"); err != nil {
		t.Fatal(err)
	}
	sys := []PolicySource{src}

	p1, err := a.GetObjectPolicyInfo("/x", sys, nil)
	if err != nil {
		t.Fatalf("GetObjectPolicyInfo: %v", err)
	}
	p2, err := a.GetObjectPolicyInfo("/x", sys, nil)
	if err != nil {
		t.Fatalf("GetObjectPolicyInfo: %v", err)
	}
	if p1 != p2 {
		t.Error("second lookup should return the cached policy pointer")
	}
	st := a.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestPolicyCacheInvalidatedByRevisionChange(t *testing.T) {
	a := New(WithPolicyCache(16))
	src := NewMemorySource()
	if err := src.AddPolicy("*", "pos_access_right apache *"); err != nil {
		t.Fatal(err)
	}
	sys := []PolicySource{src}
	p1, err := a.GetObjectPolicyInfo("/x", sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the source bumps its revision; cache must refresh.
	if err := src.AddPolicy("*", "neg_access_right apache *"); err != nil {
		t.Fatal(err)
	}
	p2, err := a.GetObjectPolicyInfo("/x", sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("cache returned stale policy after source revision change")
	}
	if len(p2.System) != 2 {
		t.Errorf("refreshed policy has %d system EACLs, want 2", len(p2.System))
	}
}

func TestInvalidateCache(t *testing.T) {
	a := New(WithPolicyCache(16))
	src := NewMemorySource()
	if err := src.AddPolicy("*", "pos_access_right apache *"); err != nil {
		t.Fatal(err)
	}
	sys := []PolicySource{src}
	if _, err := a.GetObjectPolicyInfo("/x", sys, nil); err != nil {
		t.Fatal(err)
	}
	a.InvalidateCache()
	if _, err := a.GetObjectPolicyInfo("/x", sys, nil); err != nil {
		t.Fatal(err)
	}
	st := a.CacheStats()
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2 after invalidate", st.Misses)
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	a := New()
	src := NewMemorySource()
	if err := src.AddPolicy("*", "pos_access_right apache *"); err != nil {
		t.Fatal(err)
	}
	sys := []PolicySource{src}
	p1, _ := a.GetObjectPolicyInfo("/x", sys, nil)
	p2, _ := a.GetObjectPolicyInfo("/x", sys, nil)
	if p1 == p2 {
		t.Error("without WithPolicyCache every lookup should recompose")
	}
	if st := a.CacheStats(); st != (CacheStats{}) {
		t.Errorf("stats = %+v, want zero", st)
	}
	a.InvalidateCache() // must not panic without a cache
}

func TestCacheBounded(t *testing.T) {
	a := New(WithPolicyCache(4))
	src := NewMemorySource()
	if err := src.AddPolicy("*", "pos_access_right apache *"); err != nil {
		t.Fatal(err)
	}
	sys := []PolicySource{src}
	for i := 0; i < 100; i++ {
		if _, err := a.GetObjectPolicyInfo(fmt.Sprintf("/obj%d", i), sys, nil); err != nil {
			t.Fatal(err)
		}
	}
	if n := a.cache.len(); n > 4 {
		t.Errorf("cache grew to %d entries, bound is 4", n)
	}
	if st := a.CacheStats(); st.Evictions == 0 {
		t.Error("bounded cache under churn reported zero evictions")
	}
}

func TestPolicyCacheDefaultSize(t *testing.T) {
	c := newPolicyCache(0)
	if got := c.perShard * len(c.shards); got != 1024 {
		t.Errorf("default capacity = %d, want 1024", got)
	}
}

// TestCacheLRUEviction verifies real least-recently-used eviction: the
// untouched entry goes, the recently hit entry stays.
func TestCacheLRUEviction(t *testing.T) {
	a := New(WithPolicyCache(2)) // small cache: one shard, exact LRU
	src := NewMemorySource()
	if err := src.AddPolicy("*", "pos_access_right apache *"); err != nil {
		t.Fatal(err)
	}
	sys := []PolicySource{src}
	for _, obj := range []string{"/a", "/b"} {
		if _, err := a.GetObjectPolicyInfo(obj, sys, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Touch /a so /b becomes the least recently used.
	if _, err := a.GetObjectPolicyInfo("/a", sys, nil); err != nil {
		t.Fatal(err)
	}
	// Inserting /c must evict /b, not /a.
	if _, err := a.GetObjectPolicyInfo("/c", sys, nil); err != nil {
		t.Fatal(err)
	}
	before := a.CacheStats()
	if before.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", before.Evictions)
	}
	if _, err := a.GetObjectPolicyInfo("/a", sys, nil); err != nil {
		t.Fatal(err)
	}
	after := a.CacheStats()
	if after.Hits != before.Hits+1 {
		t.Errorf("lookup of recently used /a missed after eviction: %+v -> %+v", before, after)
	}
	if a.cache.len() != 2 {
		t.Errorf("cache holds %d entries, want 2", a.cache.len())
	}
}

// TestCacheMissCoalescing verifies singleflight: concurrent misses for
// one object compose the policy once and share the result pointer.
func TestCacheMissCoalescing(t *testing.T) {
	a := New(WithPolicyCache(16))
	src := &countingSource{text: "pos_access_right apache *"}
	gate := make(chan struct{})
	src.gate = gate
	sys := []PolicySource{src}

	const workers = 8
	results := make([]*Policy, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := a.GetObjectPolicyInfo("/x", sys, nil)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = p
		}(i)
	}
	// Let every worker reach the (blocked) composition before the
	// first one finishes.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()

	if n := src.calls.Load(); n != 1 {
		t.Errorf("sources consulted %d times for 8 concurrent misses, want 1 (singleflight)", n)
	}
	for i := 1; i < workers; i++ {
		if results[i] != results[0] {
			t.Error("coalesced misses returned different policy pointers")
		}
	}
}

// countingSource counts Policies calls and can block them on a gate to
// hold several requests in the miss window at once.
type countingSource struct {
	text  string
	gate  chan struct{}
	calls atomic.Int64
}

func (c *countingSource) Policies(string) ([]*eacl.EACL, error) {
	c.calls.Add(1)
	if c.gate != nil {
		<-c.gate
	}
	e, err := eacl.ParseString(c.text)
	if err != nil {
		return nil, err
	}
	return []*eacl.EACL{e}, nil
}

func (c *countingSource) Revision(string) (string, error) { return "static", nil }
