package gaa

import (
	"fmt"
	"testing"
)

func TestPolicyCacheHitsAndMisses(t *testing.T) {
	a := New(WithPolicyCache(16))
	src := NewMemorySource()
	if err := src.AddPolicy("*", "pos_access_right apache *"); err != nil {
		t.Fatal(err)
	}
	sys := []PolicySource{src}

	p1, err := a.GetObjectPolicyInfo("/x", sys, nil)
	if err != nil {
		t.Fatalf("GetObjectPolicyInfo: %v", err)
	}
	p2, err := a.GetObjectPolicyInfo("/x", sys, nil)
	if err != nil {
		t.Fatalf("GetObjectPolicyInfo: %v", err)
	}
	if p1 != p2 {
		t.Error("second lookup should return the cached policy pointer")
	}
	st := a.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestPolicyCacheInvalidatedByRevisionChange(t *testing.T) {
	a := New(WithPolicyCache(16))
	src := NewMemorySource()
	if err := src.AddPolicy("*", "pos_access_right apache *"); err != nil {
		t.Fatal(err)
	}
	sys := []PolicySource{src}
	p1, err := a.GetObjectPolicyInfo("/x", sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the source bumps its revision; cache must refresh.
	if err := src.AddPolicy("*", "neg_access_right apache *"); err != nil {
		t.Fatal(err)
	}
	p2, err := a.GetObjectPolicyInfo("/x", sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("cache returned stale policy after source revision change")
	}
	if len(p2.System) != 2 {
		t.Errorf("refreshed policy has %d system EACLs, want 2", len(p2.System))
	}
}

func TestInvalidateCache(t *testing.T) {
	a := New(WithPolicyCache(16))
	src := NewMemorySource()
	if err := src.AddPolicy("*", "pos_access_right apache *"); err != nil {
		t.Fatal(err)
	}
	sys := []PolicySource{src}
	if _, err := a.GetObjectPolicyInfo("/x", sys, nil); err != nil {
		t.Fatal(err)
	}
	a.InvalidateCache()
	if _, err := a.GetObjectPolicyInfo("/x", sys, nil); err != nil {
		t.Fatal(err)
	}
	st := a.CacheStats()
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2 after invalidate", st.Misses)
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	a := New()
	src := NewMemorySource()
	if err := src.AddPolicy("*", "pos_access_right apache *"); err != nil {
		t.Fatal(err)
	}
	sys := []PolicySource{src}
	p1, _ := a.GetObjectPolicyInfo("/x", sys, nil)
	p2, _ := a.GetObjectPolicyInfo("/x", sys, nil)
	if p1 == p2 {
		t.Error("without WithPolicyCache every lookup should recompose")
	}
	if st := a.CacheStats(); st != (CacheStats{}) {
		t.Errorf("stats = %+v, want zero", st)
	}
	a.InvalidateCache() // must not panic without a cache
}

func TestCacheBounded(t *testing.T) {
	a := New(WithPolicyCache(4))
	src := NewMemorySource()
	if err := src.AddPolicy("*", "pos_access_right apache *"); err != nil {
		t.Fatal(err)
	}
	sys := []PolicySource{src}
	for i := 0; i < 100; i++ {
		if _, err := a.GetObjectPolicyInfo(fmt.Sprintf("/obj%d", i), sys, nil); err != nil {
			t.Fatal(err)
		}
	}
	if c := a.cache; len(c.entries) > 4 {
		t.Errorf("cache grew to %d entries, bound is 4", len(c.entries))
	}
}

func TestPolicyCacheDefaultSize(t *testing.T) {
	c := newPolicyCache(0)
	if c.max != 1024 {
		t.Errorf("default max = %d, want 1024", c.max)
	}
}
