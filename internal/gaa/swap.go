package gaa

import (
	"strconv"
	"sync"
	"sync/atomic"

	"gaaapi/internal/eacl"
)

// SwappableSource is a PolicySource indirection whose backing source
// can be replaced atomically — the seam hot policy reload swaps through
// once the new policy set has passed analysis. Revisions are prefixed
// with a swap generation, so the policy cache invalidates on every
// swap even when the old and new backing sources report identical
// revision strings (e.g. two fresh MemorySources both at "mem-1").
type SwappableSource struct {
	mu    sync.Mutex // writers (Swap) only
	state atomic.Pointer[swapSourceState]
}

type swapSourceState struct {
	src    PolicySource
	gen    uint64
	prefix string
	// revCache holds the last (inner, full) revision pair so the cache
	// hit path stays allocation-free for sources with object-independent
	// revisions (MemorySource).
	revCache atomic.Pointer[[2]string]
}

// NewSwappableSource wraps src as generation 1.
func NewSwappableSource(src PolicySource) *SwappableSource {
	s := &SwappableSource{}
	s.state.Store(newSwapSourceState(src, 1))
	return s
}

func newSwapSourceState(src PolicySource, gen uint64) *swapSourceState {
	return &swapSourceState{src: src, gen: gen, prefix: "g" + strconv.FormatUint(gen, 10) + "|"}
}

// Current returns the backing source.
func (s *SwappableSource) Current() PolicySource {
	return s.state.Load().src
}

// Generation returns the current swap generation (starts at 1, bumps
// on every Swap).
func (s *SwappableSource) Generation() uint64 {
	return s.state.Load().gen
}

// Swap atomically replaces the backing source, returning the displaced
// source and the new generation. In-flight requests keep evaluating
// against the source they loaded; new requests see the replacement.
func (s *SwappableSource) Swap(next PolicySource) (prev PolicySource, gen uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.state.Load()
	s.state.Store(newSwapSourceState(next, old.gen+1))
	return old.src, old.gen + 1
}

// Policies implements PolicySource.
func (s *SwappableSource) Policies(object string) ([]*eacl.EACL, error) {
	return s.state.Load().src.Policies(object)
}

// Revision implements PolicySource: the backing revision behind a
// generation prefix.
func (s *SwappableSource) Revision(object string) (string, error) {
	st := s.state.Load()
	inner, err := st.src.Revision(object)
	if err != nil {
		return "", err
	}
	if c := st.revCache.Load(); c != nil && c[0] == inner {
		return c[1], nil
	}
	full := st.prefix + inner
	st.revCache.Store(&[2]string{inner, full})
	return full, nil
}
