package gaa

import (
	"testing"

	"gaaapi/internal/eacl"
)

func TestNewPolicyDerivesMode(t *testing.T) {
	sys := mustEACL(t, "eacl_mode stop\nneg_access_right * *")
	p := NewPolicy("/x", []*eacl.EACL{sys}, nil)
	if p.Mode != eacl.ModeStop {
		t.Errorf("mode = %v, want stop", p.Mode)
	}
	p2 := NewPolicy("/x", nil, nil)
	if p2.Mode != DefaultCompositionMode {
		t.Errorf("default mode = %v, want %v", p2.Mode, DefaultCompositionMode)
	}
}

func TestPolicyEACLsOrderAndStop(t *testing.T) {
	sys := mustEACL(t, "eacl_mode narrow\nneg_access_right * *")
	loc := mustEACL(t, "pos_access_right apache *")
	p := NewPolicy("/x", []*eacl.EACL{sys}, []*eacl.EACL{loc})
	if got := p.EACLs(); len(got) != 2 || got[0] != sys || got[1] != loc {
		t.Errorf("EACLs() = %v, want [sys, loc]", got)
	}
	stop := mustEACL(t, "eacl_mode stop\nneg_access_right * *")
	ps := NewPolicy("/x", []*eacl.EACL{stop}, []*eacl.EACL{loc})
	if got := ps.EACLs(); len(got) != 1 || got[0] != stop {
		t.Errorf("stop EACLs() = %v, want [sys]", got)
	}
}

// Narrow: the system-wide policy is mandatory — its deny cannot be
// bypassed by a local grant (paper section 2.1).
func TestComposeNarrowSystemDenyWins(t *testing.T) {
	a, _ := newTestAPI(t)
	sys := mustEACL(t, `
eacl_mode narrow
neg_access_right * *
pre_cond_sel_yes local
`)
	loc := mustEACL(t, "pos_access_right apache *")
	p := NewPolicy("/x", []*eacl.EACL{sys}, []*eacl.EACL{loc})
	if ans := checkAuth(t, a, p, simpleRequest()); ans.Decision != No {
		t.Errorf("decision = %v, want no", ans.Decision)
	}
}

func TestComposeNarrowRequiresBoth(t *testing.T) {
	a, _ := newTestAPI(t)
	sys := mustEACL(t, "eacl_mode narrow\npos_access_right apache *")
	locDeny := mustEACL(t, "neg_access_right apache *")
	p := NewPolicy("/x", []*eacl.EACL{sys}, []*eacl.EACL{locDeny})
	if ans := checkAuth(t, a, p, simpleRequest()); ans.Decision != No {
		t.Errorf("sys yes + local no: decision = %v, want no", ans.Decision)
	}
	locGrant := mustEACL(t, "pos_access_right apache *")
	p2 := NewPolicy("/x", []*eacl.EACL{sys}, []*eacl.EACL{locGrant})
	if ans := checkAuth(t, a, p2, simpleRequest()); ans.Decision != Yes {
		t.Errorf("sys yes + local yes: decision = %v, want yes", ans.Decision)
	}
}

// Narrow with an inapplicable system policy defers to the local result
// (paper section 7.1 at low threat: the lockdown entry does not apply).
func TestComposeNarrowInapplicableSystemDefers(t *testing.T) {
	a, _ := newTestAPI(t)
	sys := mustEACL(t, `
eacl_mode narrow
neg_access_right * *
pre_cond_sel_no local
`)
	loc := mustEACL(t, "pos_access_right apache *")
	p := NewPolicy("/x", []*eacl.EACL{sys}, []*eacl.EACL{loc})
	if ans := checkAuth(t, a, p, simpleRequest()); ans.Decision != Yes {
		t.Errorf("decision = %v, want yes", ans.Decision)
	}
}

// Expand: access is allowed if either level allows it.
func TestComposeExpand(t *testing.T) {
	a, _ := newTestAPI(t)
	sysGrant := mustEACL(t, "eacl_mode expand\npos_access_right apache *")
	locDeny := mustEACL(t, "neg_access_right apache *")
	p := NewPolicy("/x", []*eacl.EACL{sysGrant}, []*eacl.EACL{locDeny})
	if ans := checkAuth(t, a, p, simpleRequest()); ans.Decision != Yes {
		t.Errorf("sys yes | local no: decision = %v, want yes (expand)", ans.Decision)
	}
	sysDeny := mustEACL(t, "eacl_mode expand\nneg_access_right apache *")
	locGrant := mustEACL(t, "pos_access_right apache *")
	p2 := NewPolicy("/x", []*eacl.EACL{sysDeny}, []*eacl.EACL{locGrant})
	if ans := checkAuth(t, a, p2, simpleRequest()); ans.Decision != Yes {
		t.Errorf("sys no | local yes: decision = %v, want yes (expand)", ans.Decision)
	}
	p3 := NewPolicy("/x", []*eacl.EACL{sysDeny}, []*eacl.EACL{locDeny})
	if ans := checkAuth(t, a, p3, simpleRequest()); ans.Decision != No {
		t.Errorf("sys no | local no: decision = %v, want no", ans.Decision)
	}
}

// Stop: the system-wide policy applies and local policies are ignored.
func TestComposeStop(t *testing.T) {
	a, log := newTestAPI(t)
	sys := mustEACL(t, "eacl_mode stop\nneg_access_right apache *")
	loc := mustEACL(t, `
pos_access_right apache *
rr_cond_record local local-fired
`)
	p := NewPolicy("/x", []*eacl.EACL{sys}, []*eacl.EACL{loc})
	if ans := checkAuth(t, a, p, simpleRequest()); ans.Decision != No {
		t.Errorf("decision = %v, want no (stop)", ans.Decision)
	}
	if got := log.all(); len(got) != 0 {
		t.Errorf("local rr conditions fired under stop mode: %v", got)
	}
}

func TestComposeStopWithoutSystemFallsToLocal(t *testing.T) {
	a, _ := newTestAPI(t)
	loc := mustEACL(t, "pos_access_right apache *")
	p := NewPolicy("/x", nil, []*eacl.EACL{loc})
	p.Mode = eacl.ModeStop
	if ans := checkAuth(t, a, p, simpleRequest()); ans.Decision != Yes {
		t.Errorf("decision = %v, want yes", ans.Decision)
	}
}

// Multiple policies at the same level are conjoined (paper section 2.1).
func TestSameLevelConjunction(t *testing.T) {
	a, _ := newTestAPI(t)
	l1 := mustEACL(t, "pos_access_right apache *")
	l2 := mustEACL(t, "neg_access_right apache *")
	p := NewPolicy("/x", nil, []*eacl.EACL{l1, l2})
	if ans := checkAuth(t, a, p, simpleRequest()); ans.Decision != No {
		t.Errorf("decision = %v, want no (conjunction of local policies)", ans.Decision)
	}
}

func TestBothLevelsInapplicableIsUncertain(t *testing.T) {
	a, _ := newTestAPI(t)
	sys := mustEACL(t, "eacl_mode narrow\npos_access_right sshd *")
	loc := mustEACL(t, "neg_access_right ftp *")
	p := NewPolicy("/x", []*eacl.EACL{sys}, []*eacl.EACL{loc})
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != Maybe || ans.Applicable {
		t.Errorf("decision = %v applicable=%v, want maybe/false", ans.Decision, ans.Applicable)
	}
}

func TestChallengeSuppressedByUncurableDeny(t *testing.T) {
	a, _ := newTestAPI(t)
	// System denies outright; local denies for lack of authentication.
	// Authenticating cannot cure the system deny, so no challenge.
	sys := mustEACL(t, `
eacl_mode narrow
neg_access_right * *
pre_cond_sel_yes local
`)
	loc := mustEACL(t, `
pos_access_right apache *
pre_cond_req_no local
`)
	p := NewPolicy("/x", []*eacl.EACL{sys}, []*eacl.EACL{loc})
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != No {
		t.Fatalf("decision = %v, want no", ans.Decision)
	}
	if ans.Challenge != "" {
		t.Errorf("challenge = %q, want suppressed", ans.Challenge)
	}
}

func TestChallengeSurvivesWhenCurable(t *testing.T) {
	a, _ := newTestAPI(t)
	loc := mustEACL(t, `
pos_access_right apache *
pre_cond_req_no local
`)
	p := NewPolicy("/x", nil, []*eacl.EACL{loc})
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != No || ans.Challenge == "" {
		t.Errorf("decision = %v challenge = %q, want no with challenge", ans.Decision, ans.Challenge)
	}
}

func TestExpandMaybePropagates(t *testing.T) {
	a, _ := newTestAPI(t)
	sys := mustEACL(t, `
eacl_mode expand
pos_access_right apache *
pre_cond_maybe local
`)
	loc := mustEACL(t, "neg_access_right apache *")
	p := NewPolicy("/x", []*eacl.EACL{sys}, []*eacl.EACL{loc})
	ans := checkAuth(t, a, p, simpleRequest())
	if ans.Decision != Maybe {
		t.Errorf("decision = %v, want maybe (yes-side uncertain beats deny under expand)", ans.Decision)
	}
	if len(ans.Unevaluated) == 0 {
		t.Error("unevaluated conditions lost in composition")
	}
}
