package gaa

import (
	"context"
	"fmt"

	"gaaapi/internal/eacl"
)

// evalResult is the outcome of scanning one EACL.
type evalResult struct {
	decision    Decision
	applicable  bool
	entry       *eacl.Entry // deciding entry, nil when inapplicable
	source      string
	unevaluated []eacl.Condition
	challenge   string
	trace       []TraceEvent
}

// evaluateEACL scans the ordered entries of one EACL for the requested
// rights and returns the first firing entry's decision (see the package
// comment for the full semantics). Request-result conditions are NOT
// evaluated here: they run once the composed decision is known.
func (a *API) evaluateEACL(ctx context.Context, e *eacl.EACL, req *Request) evalResult {
	res := evalResult{source: e.Source}
	for i := range e.Entries {
		entry := &e.Entries[i]
		if !entryMatches(entry, req) {
			continue
		}
		var (
			sawNo  bool
			maybes []eacl.Condition
		)
		pre := entry.Block(eacl.BlockPre)
		for _, cond := range pre {
			out := a.evaluateCondition(ctx, cond, req)
			res.trace = append(res.trace, TraceEvent{
				Source: e.Source, EntryLine: entry.Line, Cond: cond, Outcome: out,
			})
			switch out.Result {
			case No:
				if out.classOrDefault() == ClassSelector || entry.Right.Sign == eacl.Neg {
					// Entry inapplicable: scan continues.
					sawNo = true
				} else {
					// Failed requirement on a positive entry: final
					// deny, possibly with an authentication challenge.
					res.decision = No
					res.applicable = true
					res.entry = entry
					res.challenge = out.Challenge
					res.trace = append(res.trace, TraceEvent{
						Source: e.Source, EntryLine: entry.Line,
						Note: fmt.Sprintf("requirement failed: %s", out.Detail),
					})
					return res
				}
			case Maybe:
				maybes = append(maybes, cond)
			case Yes:
				// condition met; continue within the entry
			default:
				// An evaluator returned a zero/invalid decision;
				// treat as unevaluated for fail-safety.
				maybes = append(maybes, cond)
			}
			if sawNo {
				break // conditions are ordered; a selector NO ends the entry
			}
		}
		if sawNo {
			res.trace = append(res.trace, TraceEvent{
				Source: e.Source, EntryLine: entry.Line, Note: "entry inapplicable",
			})
			continue
		}
		if len(maybes) > 0 {
			res.decision = Maybe
			res.applicable = true
			res.entry = entry
			res.unevaluated = maybes
			res.trace = append(res.trace, TraceEvent{
				Source: e.Source, EntryLine: entry.Line,
				Note: fmt.Sprintf("entry uncertain: %d condition(s) unevaluated", len(maybes)),
			})
			return res
		}
		// All pre-conditions met: the entry fires.
		res.applicable = true
		res.entry = entry
		if entry.Right.Sign == eacl.Pos {
			res.decision = Yes
			res.trace = append(res.trace, TraceEvent{
				Source: e.Source, EntryLine: entry.Line, Note: "entry fired: grant",
			})
		} else {
			res.decision = No
			res.trace = append(res.trace, TraceEvent{
				Source: e.Source, EntryLine: entry.Line, Note: "entry fired: deny",
			})
		}
		return res
	}
	// No entry applied: uncertain.
	res.decision = Maybe
	return res
}

// entryMatches reports whether the entry's right covers any requested
// right.
func entryMatches(entry *eacl.Entry, req *Request) bool {
	for _, r := range req.Rights {
		if eacl.MatchRight(entry.Right, r) {
			return true
		}
	}
	return false
}

// evaluateCondition dispatches one condition to its registered
// evaluator. Unregistered conditions evaluate to MAYBE/unevaluated
// (paper section 6: "The GAA-API returns MAYBE if the corresponding
// condition evaluation function is not registered"). Evaluator panics
// are not recovered — evaluators are trusted in-process modules — but
// evaluator errors degrade to MAYBE.
func (a *API) evaluateCondition(ctx context.Context, cond eacl.Condition, req *Request) Outcome {
	ev, ok := a.reg.lookup(cond.Type, cond.DefAuth)
	if !ok {
		return UnevaluatedOutcome("no evaluator registered")
	}
	// Adaptive constraint specification (paper section 2): '@name'
	// tokens in the condition value resolve through the runtime value
	// provider before the evaluator sees them.
	if resolved, ok := resolveValue(cond.Value, a.values); ok {
		cond.Value = resolved
	} else {
		return UnevaluatedOutcome("unresolved runtime value reference in " + cond.Value)
	}
	out := ev.Evaluate(ctx, cond, req)
	if out.Err != nil && out.Result != No {
		// Fail safe: an erroring evaluator cannot assert YES.
		out.Result = Maybe
		out.Unevaluated = true
	}
	return out
}

// evaluateBlock evaluates an ordered condition slice (request-result,
// mid or post blocks) and returns the conjunction of the outcomes plus
// the trace. Used by the request-result, execution-control and
// post-execution phases where every condition runs (no entry-selection
// short-circuit).
func (a *API) evaluateBlock(ctx context.Context, source string, entryLine int, conds []eacl.Condition, req *Request) (Decision, []TraceEvent) {
	if len(conds) == 0 {
		return Yes, nil
	}
	var (
		combined Decision
		trace    = make([]TraceEvent, 0, len(conds))
	)
	for _, cond := range conds {
		out := a.evaluateCondition(ctx, cond, req)
		trace = append(trace, TraceEvent{
			Source: source, EntryLine: entryLine, Cond: cond, Outcome: out,
		})
		combined = Conjoin(combined, out.Result)
	}
	return combined, trace
}
