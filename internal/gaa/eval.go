package gaa

import (
	"context"
	"fmt"

	"gaaapi/internal/eacl"
)

// evalResult is the outcome of scanning one EACL.
type evalResult struct {
	decision    Decision
	applicable  bool
	entry       *eacl.Entry // deciding entry, nil when inapplicable
	source      string
	unevaluated []eacl.Condition
	challenge   string
	trace       []TraceEvent
	faults      []Fault
}

// evaluateEACL scans the ordered entries of one EACL for the requested
// rights and returns the first firing entry's decision (see the package
// comment for the full semantics). Request-result conditions are NOT
// evaluated here: they run once the composed decision is known.
//
// The pre-condition block is filtered inline from entry.Conditions
// (rather than materialized via Entry.Block) and TraceEvents are only
// recorded when req.Trace is set, so the common Yes/No path performs
// no per-entry allocation.
func (a *API) evaluateEACL(ctx context.Context, e *eacl.EACL, req *Request) evalResult {
	res := evalResult{source: e.Source}
	for i := range e.Entries {
		entry := &e.Entries[i]
		if !entryMatches(entry, req) {
			continue
		}
		var (
			sawNo  bool
			maybes []eacl.Condition
		)
		for ci := range entry.Conditions {
			cond := entry.Conditions[ci]
			if cond.Block != eacl.BlockPre {
				continue
			}
			out := a.evaluateCondition(ctx, cond, req)
			if out.Fault != FaultNone {
				res.faults = append(res.faults, Fault{Cond: cond, Kind: out.Fault, Reason: out.faultReason()})
			}
			// Faults are traced even when tracing is off: a degraded
			// evaluation must stay observable.
			if req.Trace || out.Fault != FaultNone {
				res.trace = append(res.trace, TraceEvent{
					Source: e.Source, EntryLine: entry.Line, Cond: cond, Outcome: out,
				})
			}
			switch out.Result {
			case No:
				if out.classOrDefault() == ClassSelector || entry.Right.Sign == eacl.Neg {
					// Entry inapplicable: scan continues.
					sawNo = true
				} else {
					// Failed requirement on a positive entry: final
					// deny, possibly with an authentication challenge.
					res.decision = No
					res.applicable = true
					res.entry = entry
					res.challenge = out.Challenge
					if req.Trace {
						res.trace = append(res.trace, TraceEvent{
							Source: e.Source, EntryLine: entry.Line,
							Note: fmt.Sprintf("requirement failed: %s", out.Detail),
						})
					}
					return res
				}
			case Maybe:
				maybes = append(maybes, cond)
			case Yes:
				// condition met; continue within the entry
			default:
				// An evaluator returned a zero/invalid decision;
				// treat as unevaluated for fail-safety.
				maybes = append(maybes, cond)
			}
			if sawNo {
				break // conditions are ordered; a selector NO ends the entry
			}
		}
		if sawNo {
			if req.Trace {
				res.trace = append(res.trace, TraceEvent{
					Source: e.Source, EntryLine: entry.Line, Note: "entry inapplicable",
				})
			}
			continue
		}
		if len(maybes) > 0 {
			res.decision = Maybe
			res.applicable = true
			res.entry = entry
			res.unevaluated = maybes
			if req.Trace {
				res.trace = append(res.trace, TraceEvent{
					Source: e.Source, EntryLine: entry.Line,
					Note: fmt.Sprintf("entry uncertain: %d condition(s) unevaluated", len(maybes)),
				})
			}
			return res
		}
		// All pre-conditions met: the entry fires.
		res.applicable = true
		res.entry = entry
		if entry.Right.Sign == eacl.Pos {
			res.decision = Yes
			if req.Trace {
				res.trace = append(res.trace, TraceEvent{
					Source: e.Source, EntryLine: entry.Line, Note: "entry fired: grant",
				})
			}
		} else {
			res.decision = No
			if req.Trace {
				res.trace = append(res.trace, TraceEvent{
					Source: e.Source, EntryLine: entry.Line, Note: "entry fired: deny",
				})
			}
		}
		return res
	}
	// No entry applied: uncertain.
	res.decision = Maybe
	return res
}

// entryMatches reports whether the entry's right covers any requested
// right.
func entryMatches(entry *eacl.Entry, req *Request) bool {
	for _, r := range req.Rights {
		if eacl.MatchRight(entry.Right, r) {
			return true
		}
	}
	return false
}

// evaluateCondition dispatches one condition to its registered
// evaluator. Unregistered conditions evaluate to MAYBE/unevaluated
// (paper section 6: "The GAA-API returns MAYBE if the corresponding
// condition evaluation function is not registered"). Registered
// evaluators run behind the supervision layer (supervise.go), which
// recovers panics, enforces the optional per-evaluator deadline, and
// degrades errors and invalid decisions to MAYBE with a tagged Fault;
// the error check below is only a safety net for outcomes that bypass
// supervision.
func (a *API) evaluateCondition(ctx context.Context, cond eacl.Condition, req *Request) Outcome {
	ev, ok := a.reg.lookup(cond.Type, cond.DefAuth)
	if !ok {
		return UnevaluatedOutcome("no evaluator registered")
	}
	// Adaptive constraint specification (paper section 2): '@name'
	// tokens in the condition value resolve through the runtime value
	// provider before the evaluator sees them.
	if resolved, ok := resolveValue(cond.Value, a.values); ok {
		cond.Value = resolved
	} else {
		return UnevaluatedOutcome("unresolved runtime value reference in " + cond.Value)
	}
	out := ev.Evaluate(ctx, cond, req)
	if out.Err != nil && out.Result != No {
		// Fail safe: an erroring evaluator cannot assert YES.
		out.Result = Maybe
		out.Unevaluated = true
	}
	return out
}

// evaluateBlock evaluates an ordered condition slice (request-result,
// mid or post blocks) and returns the conjunction of the outcomes plus
// the trace (nil unless req.Trace is set). Used by the request-result,
// execution-control and post-execution phases where every condition
// runs (no entry-selection short-circuit).
func (a *API) evaluateBlock(ctx context.Context, source string, entryLine int, conds []eacl.Condition, req *Request) (Decision, []TraceEvent) {
	if len(conds) == 0 {
		return Yes, nil
	}
	var (
		combined Decision
		trace    []TraceEvent
	)
	if req.Trace {
		trace = make([]TraceEvent, 0, len(conds))
	}
	for _, cond := range conds {
		out := a.evaluateCondition(ctx, cond, req)
		if req.Trace || out.Fault != FaultNone {
			trace = append(trace, TraceEvent{
				Source: source, EntryLine: entryLine, Cond: cond, Outcome: out,
			})
		}
		combined = Conjoin(combined, out.Result)
	}
	return combined, trace
}

// evaluateEntryBlock evaluates the conditions of one block of an entry
// (filtered inline, no intermediate slice) with the conjunction
// appended-trace protocol of evaluateBlock. The second return reports
// whether the entry had any condition in the block; an empty block
// yields (Yes, false) so callers skip the conjunction, matching the
// original Entry.Block + evaluateBlock behaviour.
func (a *API) evaluateEntryBlock(ctx context.Context, source string, entry *eacl.Entry, b eacl.Block, req *Request, trace *[]TraceEvent, faults *[]Fault) (Decision, bool) {
	var (
		combined  Decision
		evaluated bool
	)
	for ci := range entry.Conditions {
		cond := entry.Conditions[ci]
		if cond.Block != b {
			continue
		}
		evaluated = true
		out := a.evaluateCondition(ctx, cond, req)
		if out.Fault != FaultNone && faults != nil {
			*faults = append(*faults, Fault{Cond: cond, Kind: out.Fault, Reason: out.faultReason()})
		}
		if req.Trace || out.Fault != FaultNone {
			*trace = append(*trace, TraceEvent{
				Source: source, EntryLine: entry.Line, Cond: cond, Outcome: out,
			})
		}
		combined = Conjoin(combined, out.Result)
	}
	if !evaluated {
		return Yes, false
	}
	return combined, true
}
