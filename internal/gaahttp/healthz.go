package gaahttp

import (
	"encoding/json"
	"net/http"

	"gaaapi/internal/cluster"
	"gaaapi/internal/statestore"
)

// HealthzPath is where deployments serve the readiness endpoint.
const HealthzPath = "/gaa/healthz"

// Healthz is the readiness report: whether the adaptive state was
// recovered, the policy set is live, and replication has caught up.
type Healthz struct {
	// Ready is the overall verdict (the HTTP status mirrors it: 200
	// ready, 503 not).
	Ready bool `json:"ready"`
	// Store is "ok" (journal recovered), "none" (running in-memory).
	Store string `json:"store"`
	// DroppedBytes is the corrupt WAL tail quarantined at recovery.
	DroppedBytes int64 `json:"dropped_bytes,omitempty"`
	// Policy is "ok" once the guard serves a policy generation.
	Policy string `json:"policy"`
	// Replication is "none" (single node), "ok" (all peers confirmed
	// the whole log), "catching-up" (peers behind but progressing) or
	// "degraded" (a peer unreachable past the degraded window).
	Replication string `json:"replication"`
	// Lag is the largest per-peer count of unconfirmed records.
	Lag uint64 `json:"lag,omitempty"`
	// DegradedPeers counts peers currently unreachable.
	DegradedPeers int `json:"degraded_peers,omitempty"`
}

// ComputeHealth builds the readiness report from the durable store and
// the replication node (either may be nil). Degraded replication keeps
// the node ready — a partitioned peer must not make a load balancer
// pull the one node that still serves (that would turn a partition
// into an outage); catching up on a healthy link is the only not-ready
// replication state, and only until the lag drains.
func ComputeHealth(store *statestore.Store, node *cluster.Node) Healthz {
	h := Healthz{Store: "none", Policy: "ok", Replication: "none"}
	if store != nil {
		h.Store = "ok"
		h.DroppedBytes = store.Recovery().DroppedBytes
	}
	if node != nil {
		st := node.Stats()
		h.Lag = st.MaxLag
		h.DegradedPeers = st.DegradedPeers
		switch {
		case st.DegradedPeers > 0:
			h.Replication = "degraded"
		case st.MaxLag > 0:
			h.Replication = "catching-up"
		default:
			h.Replication = "ok"
		}
	}
	h.Ready = h.Replication != "catching-up"
	return h
}

// Health computes the stack's readiness report.
func (s *Stack) Health() Healthz { return ComputeHealth(s.Store, s.Cluster) }

// HealthzHandler serves health's report as JSON: 200 when ready
// (including degraded replication), 503 while replication is catching
// up on healthy links.
func HealthzHandler(health func() Healthz) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := health()
		w.Header().Set("Content-Type", "application/json")
		if !h.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(h)
	})
}
