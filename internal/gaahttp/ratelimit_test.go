package gaahttp

import (
	"net/http"
	"sync"
	"testing"
)

// TestRequestRateLimitRecipe expresses per-client request-rate
// throttling (a DoS countermeasure of the paper's section 1) as pure
// policy: every request is counted (rr_cond_count on:any) and a neg
// entry fires once a client's count in the window crosses the
// threshold.
func TestRequestRateLimitRecipe(t *testing.T) {
	const local = `
neg_access_right apache *
pre_cond_threshold local counter=req_rate key=client_ip max=10 window=60s
pos_access_right apache *
rr_cond_count local on:any/req_rate
`
	st, err := NewStack(StackConfig{
		LocalPolicies: map[string]string{"*": local},
		DocRoot:       map[string]string{"/index.html": "home"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// The first 10 requests pass; from the 11th the threshold entry
	// fires first.
	for i := 1; i <= 10; i++ {
		if code := serveTarget(t, st, "/index.html", "10.0.0.8"); code != http.StatusOK {
			t.Fatalf("request %d = %d, want 200", i, code)
		}
	}
	if code := serveTarget(t, st, "/index.html", "10.0.0.8"); code != http.StatusForbidden {
		t.Errorf("request 11 = %d, want 403 (rate limited)", code)
	}
	// Another client has its own budget.
	if code := serveTarget(t, st, "/index.html", "10.0.0.9"); code != http.StatusOK {
		t.Errorf("other client = %d, want 200", code)
	}
}

// TestConcurrentMixedWorkloadSoak hammers the full stack from many
// goroutines with a mix of legitimate requests and attacks. Assertions
// are aggregate: attacks always denied, and legit clients only ever
// see 200 (no attacker shares their address). Run with -race in CI.
func TestConcurrentMixedWorkloadSoak(t *testing.T) {
	st, err := NewStack(StackConfig{
		SystemPolicy:  policy72System,
		LocalPolicies: map[string]string{"*": policy72Local},
		DocRoot: map[string]string{
			"/index.html":      "home",
			"/docs/guide.html": "guide",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures []string
	)
	record := func(msg string) {
		mu.Lock()
		defer mu.Unlock()
		if len(failures) < 10 {
			failures = append(failures, msg)
		}
	}

	for worker := 0; worker < 16; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			legitIP := "10.0.1." + itoa(worker+1)
			attackIP := "192.0.2." + itoa(worker+1)
			for i := 0; i < 40; i++ {
				if i%4 == 3 {
					if code := serveTarget(t, st, "/cgi-bin/phf?Qalias=x", attackIP); code != http.StatusForbidden {
						record("attack served: " + itoa(code))
					}
				} else {
					if code := serveTarget(t, st, "/index.html", legitIP); code != http.StatusOK {
						record("legit denied: " + itoa(code))
					}
				}
			}
		}(worker)
	}
	wg.Wait()
	for _, f := range failures {
		t.Error(f)
	}
	// Every attacker address ended up blacklisted.
	if got := st.Groups.Len("BadGuys"); got != 16 {
		t.Errorf("blacklist size = %d, want 16", got)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
