package gaahttp

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gaaapi/internal/gaa"
)

const (
	allowAll = "pos_access_right apache *"
	denyAll  = "neg_access_right apache *"
	// badRegex parses as an EACL but cannot behave as written; the
	// analyzer flags it at severity error (E001), which must reject a
	// reload.
	badRegex = "neg_access_right apache *\npre_cond_regex gnu re:[unclosed"
)

func reloadStack(t *testing.T) *Stack {
	t.Helper()
	st, err := NewStack(StackConfig{
		LocalPolicies: map[string]string{"*": allowAll},
		DocRoot:       map[string]string{"/index.html": "<html>ok</html>"},
		PolicyCache:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	return st
}

func reloadGet(st *Stack, path string) int {
	rec := httptest.NewRecorder()
	st.Server.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code
}

func TestReloadAppliesAndInvalidatesCache(t *testing.T) {
	st := reloadStack(t)
	if code := reloadGet(st, "/index.html"); code != http.StatusOK {
		t.Fatalf("pre-reload GET = %d, want 200", code)
	}
	// Warm the policy cache with the grant.
	reloadGet(st, "/index.html")

	res := st.ReloadPolicies("", map[string]string{"*": denyAll})
	if !res.OK {
		t.Fatalf("reload rejected: %+v", res)
	}
	if res.Generation != 2 {
		t.Fatalf("generation = %d, want 2", res.Generation)
	}
	if !res.Probation {
		t.Fatal("applied reload did not arm the health probe")
	}
	// The cached grant must not survive the swap.
	if code := reloadGet(st, "/index.html"); code != http.StatusForbidden {
		t.Fatalf("post-reload GET = %d, want 403 (stale cache?)", code)
	}
	stats := st.Reloader.Stats()
	if stats.Applied != 1 || stats.Rejected != 0 || stats.Generation != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestRejectedReloadKeepsServingOldPolicy(t *testing.T) {
	st := reloadStack(t)
	if code := reloadGet(st, "/index.html"); code != http.StatusOK {
		t.Fatalf("pre-reload GET = %d, want 200", code)
	}

	res := st.ReloadPolicies("", map[string]string{"*": badRegex})
	if res.OK {
		t.Fatal("analyzer-rejected policy applied")
	}
	if res.Err == "" || len(res.Diagnostics) == 0 {
		t.Fatalf("rejection carries no diagnostics: %+v", res)
	}
	found := false
	for _, d := range res.Diagnostics {
		if strings.Contains(d, "E001") {
			found = true
		}
	}
	if !found {
		t.Fatalf("diagnostics lack the rejecting rule: %v", res.Diagnostics)
	}
	if res.Generation != 1 {
		t.Fatalf("generation = %d after rejection, want 1 (unswapped)", res.Generation)
	}
	// The old policy must keep serving.
	if code := reloadGet(st, "/index.html"); code != http.StatusOK {
		t.Fatalf("GET after rejected reload = %d, want 200", code)
	}
	stats := st.Reloader.Stats()
	if stats.Rejected != 1 || stats.Applied != 0 || stats.LastError == "" || len(stats.LastDiagnostics) == 0 {
		t.Fatalf("stats after rejection = %+v", stats)
	}
}

func TestReloadParseErrorRejected(t *testing.T) {
	st := reloadStack(t)
	res := st.ReloadPolicies("", map[string]string{"*": "this is not an eacl"})
	if res.OK || res.Err == "" {
		t.Fatalf("parse garbage accepted: %+v", res)
	}
	if code := reloadGet(st, "/index.html"); code != http.StatusOK {
		t.Fatalf("GET after parse-failed reload = %d, want 200", code)
	}
}

func newTestReloader(t *testing.T, window int) (*Reloader, *gaa.SwappableSource, *gaa.SwappableSource, gaa.PolicySource) {
	t.Helper()
	orig := gaa.NewMemorySource()
	if err := orig.AddPolicy("*", allowAll); err != nil {
		t.Fatal(err)
	}
	system := gaa.NewSwappableSource(gaa.NewMemorySource())
	local := gaa.NewSwappableSource(orig)
	r := NewReloader(ReloadConfig{
		System:      system,
		Local:       local,
		ProbeWindow: window,
	})
	return r, system, local, orig
}

func TestHealthProbeAutoRollback(t *testing.T) {
	r, _, local, orig := newTestReloader(t, 4)
	res := r.ReloadWith(func() (*PolicyBundle, error) {
		return BundleFromStrings("", map[string]string{"*": denyAll})
	})
	if !res.OK || !res.Probation {
		t.Fatalf("reload = %+v", res)
	}
	if local.Current() == orig {
		t.Fatal("swap did not replace the local source")
	}

	// Every post-swap request degrades: the probe must revert the swap.
	for i := 0; i < 4; i++ {
		r.Observe(true)
	}
	if local.Current() != orig {
		t.Fatal("degraded probe window did not roll the policy back")
	}
	stats := r.Stats()
	if stats.AutoRollbacks != 1 {
		t.Fatalf("AutoRollbacks = %d, want 1", stats.AutoRollbacks)
	}
	if !strings.Contains(stats.LastError, "rolled back") {
		t.Fatalf("LastError = %q, want rollback explanation", stats.LastError)
	}
	if stats.Probation {
		t.Fatal("probation still armed after rollback")
	}
}

func TestHealthProbeHealthySwapSticks(t *testing.T) {
	r, _, local, orig := newTestReloader(t, 4)
	res := r.ReloadWith(func() (*PolicyBundle, error) {
		return BundleFromStrings("", map[string]string{"*": denyAll})
	})
	if !res.OK {
		t.Fatalf("reload = %+v", res)
	}
	swapped := local.Current()
	for i := 0; i < 8; i++ {
		r.Observe(false)
	}
	if local.Current() != swapped || local.Current() == orig {
		t.Fatal("healthy probe window reverted the swap")
	}
	stats := r.Stats()
	if stats.AutoRollbacks != 0 || stats.Probation {
		t.Fatalf("stats = %+v, want no rollback, probation closed", stats)
	}
}

func TestHealthProbeRespectsDegradedBaseline(t *testing.T) {
	// A workload that was already degraded before the swap must not
	// condemn the new policy: rate must exceed baseline + margin.
	r, _, local, orig := newTestReloader(t, 4)
	for i := 0; i < 64; i++ {
		r.Health().Observe(true) // baseline: 100% degraded
	}
	res := r.ReloadWith(func() (*PolicyBundle, error) {
		return BundleFromStrings("", map[string]string{"*": denyAll})
	})
	if !res.OK {
		t.Fatalf("reload = %+v", res)
	}
	for i := 0; i < 4; i++ {
		r.Observe(true)
	}
	if local.Current() == orig {
		t.Fatal("probe rolled back despite identical pre-swap baseline")
	}
	if got := r.Stats().AutoRollbacks; got != 0 {
		t.Fatalf("AutoRollbacks = %d, want 0", got)
	}
}

func TestManualRollback(t *testing.T) {
	r, _, local, orig := newTestReloader(t, 64)
	res := r.ReloadWith(func() (*PolicyBundle, error) {
		return BundleFromStrings("", map[string]string{"*": denyAll})
	})
	if !res.OK {
		t.Fatalf("reload = %+v", res)
	}
	if !r.Rollback() {
		t.Fatal("Rollback() = false while probation open")
	}
	if local.Current() != orig {
		t.Fatal("manual rollback did not restore the previous source")
	}
	if r.Rollback() {
		t.Fatal("second Rollback() = true with nothing to revert")
	}
}

func TestHealthWindow(t *testing.T) {
	h := NewHealth(4)
	if rate, n := h.Rate(); rate != 0 || n != 0 {
		t.Fatalf("empty window = %v/%d", rate, n)
	}
	h.Observe(true)
	h.Observe(false)
	if rate, n := h.Rate(); rate != 0.5 || n != 2 {
		t.Fatalf("rate = %v/%d, want 0.5/2", rate, n)
	}
	// Overwrite the full ring: the bad observation must age out.
	for i := 0; i < 4; i++ {
		h.Observe(false)
	}
	if rate, n := h.Rate(); rate != 0 || n != 4 {
		t.Fatalf("rate = %v/%d after aging, want 0/4", rate, n)
	}
}

func TestReloadWithNoLoader(t *testing.T) {
	r, _, _, _ := newTestReloader(t, 4)
	if res := r.Reload(); res.OK || res.Err == "" {
		t.Fatalf("Reload without loader = %+v", res)
	}
}
