package gaahttp_test

import (
	"fmt"
	"net/http/httptest"

	"gaaapi/internal/gaahttp"
)

// ExampleNewStack assembles a complete protected deployment and shows
// the paper's section 7.2 behaviour: the exploit is denied and its
// source blacklisted.
func ExampleNewStack() {
	st, err := gaahttp.NewStack(gaahttp.StackConfig{
		SystemPolicy: `
eacl_mode narrow
neg_access_right * *
pre_cond_accessid_GROUP local BadGuys
`,
		LocalPolicies: map[string]string{"*": `
neg_access_right apache *
pre_cond_regex gnu *phf*
rr_cond_update_log local on:failure/BadGuys/info:IP
pos_access_right apache *
`},
		DocRoot: map[string]string{"/index.html": "home"},
	})
	if err != nil {
		fmt.Println("stack:", err)
		return
	}
	defer st.Close()

	get := func(target, ip string) int {
		req := httptest.NewRequest("GET", target, nil)
		req.RemoteAddr = ip + ":40000"
		w := httptest.NewRecorder()
		st.Server.ServeHTTP(w, req)
		return w.Code
	}

	fmt.Println("attack:", get("/cgi-bin/phf?Qalias=x", "10.0.0.66"))
	fmt.Println("blacklisted:", st.Groups.Contains("BadGuys", "10.0.0.66"))
	fmt.Println("follow-up:", get("/index.html", "10.0.0.66"))
	fmt.Println("clean client:", get("/index.html", "10.0.0.9"))
	// Output:
	// attack: 403
	// blacklisted: true
	// follow-up: 403
	// clean client: 200
}
