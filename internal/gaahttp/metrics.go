package gaahttp

import (
	"bufio"
	"io"
	"net"
	"net/http"
	"time"

	"gaaapi/internal/cluster"
	"gaaapi/internal/conditions"
	"gaaapi/internal/ids"
	"gaaapi/internal/ids/adaptive"
	"gaaapi/internal/metrics"
	"gaaapi/internal/netblock"
	"gaaapi/internal/notify"
	"gaaapi/internal/statestore"
)

// Metric names registered by RegisterComponentMetrics and
// InstrumentHandler. Like the gaa.Metric* names they are an
// observability contract (docs/OBSERVABILITY.md): renaming one breaks
// dashboards and the golden fixtures.
const (
	MetricThreatLevel       = "gaa_threat_level"
	MetricThreatTransitions = "gaa_threat_transitions_total"
	MetricIDSReports        = "gaa_ids_reports_total"
	MetricActiveBlocks      = "gaa_netblock_active_blocks"
	MetricMemoHits          = "gaa_condition_memo_hits_total"
	MetricMemoMisses        = "gaa_condition_memo_misses_total"

	MetricNotifyDelivered     = "gaa_notify_delivered_total"
	MetricNotifyFailures      = "gaa_notify_failures_total"
	MetricNotifyAttempts      = "gaa_notify_attempts_total"
	MetricNotifyRetries       = "gaa_notify_retries_total"
	MetricNotifyShortCircuits = "gaa_notify_short_circuits_total"
	MetricNotifyBreakerOpens  = "gaa_notify_breaker_opens_total"
	MetricNotifyBreakerState  = "gaa_notify_breaker_state"

	MetricStateAppends        = "gaa_state_appends_total"
	MetricStateAppendErrors   = "gaa_state_append_errors_total"
	MetricStateSnapshots      = "gaa_state_snapshots_total"
	MetricStateSnapshotErrors = "gaa_state_snapshot_errors_total"
	MetricStateSyncs          = "gaa_state_syncs_total"
	MetricStateSyncErrors     = "gaa_state_sync_errors_total"
	MetricStateLastSeq        = "gaa_state_last_seq"
	MetricStateDroppedBytes   = "gaa_state_recovery_dropped_bytes"
	MetricStateJournalErrors  = "gaa_state_journal_errors_total"
	MetricStateRestoreDropped = "gaa_state_restore_dropped_records"

	MetricClusterPushes           = "gaa_cluster_pushes_total"
	MetricClusterRecordsSent      = "gaa_cluster_records_sent_total"
	MetricClusterPushFailures     = "gaa_cluster_push_failures_total"
	MetricClusterRecordsApplied   = "gaa_cluster_records_applied_total"
	MetricClusterRecordsDuplicate = "gaa_cluster_records_duplicate_total"
	MetricClusterCorruptFrames    = "gaa_cluster_corrupt_frames_total"
	MetricClusterApplyErrors      = "gaa_cluster_apply_errors_total"
	MetricClusterSnapshotsSent    = "gaa_cluster_snapshots_sent_total"
	MetricClusterSnapshotsApplied = "gaa_cluster_snapshots_applied_total"
	MetricClusterPeers            = "gaa_cluster_peers"
	MetricClusterPeersDegraded    = "gaa_cluster_peers_degraded"
	MetricClusterConvergenceLag   = "gaa_cluster_convergence_lag_records"
	MetricClusterLogSeq           = "gaa_cluster_log_seq"

	MetricReloadAttempts      = "gaa_reload_attempts_total"
	MetricReloadApplied       = "gaa_reload_applied_total"
	MetricReloadRejected      = "gaa_reload_rejected_total"
	MetricReloadAutoRollbacks = "gaa_reload_auto_rollbacks_total"
	MetricReloadGeneration    = "gaa_reload_generation"
	MetricReloadProbation     = "gaa_reload_probation"

	MetricHTTPRequests = "gaa_http_requests_total"
	MetricHTTPDuration = "gaa_http_request_duration_seconds"

	MetricAdaptiveSignal       = "gaa_adaptive_signal"
	MetricAdaptiveLevel        = "gaa_adaptive_level"
	MetricAdaptiveSources      = "gaa_adaptive_sources"
	MetricAdaptiveResources    = "gaa_adaptive_resources"
	MetricAdaptiveSamples      = "gaa_adaptive_samples_total"
	MetricAdaptiveDropped      = "gaa_adaptive_samples_dropped_total"
	MetricAdaptiveSourceBlocks = "gaa_adaptive_source_blocks_total"
	MetricAdaptiveRaises       = "gaa_adaptive_raises_total"
	MetricAdaptiveLowers       = "gaa_adaptive_lowers_total"
)

// Components names the stack pieces whose existing counters are scraped
// at collect time. Every field is optional: nil components register
// nothing, so a deployment exposes exactly what it runs.
type Components struct {
	Threat   *ids.Manager
	Bus      *ids.Bus
	Blocks   *netblock.Set
	Reliable *notify.Reliable
	Store    *statestore.Store
	Persist  *statestore.Adaptive
	Reloader *Reloader
	Cluster  *cluster.Node
	Scorer   *adaptive.Engine
}

// RegisterComponentMetrics wires the adaptive substrate into reg using
// collect-time functions over each component's own atomics — the
// components keep sole ownership of their counters, so there is no
// double accounting and no hot-path change. The process-wide condition
// memo caches (regex, fields) are always registered.
func RegisterComponentMetrics(reg *metrics.Registry, c Components) {
	for _, cache := range []string{"regex", "fields"} {
		cache := cache
		reg.CounterFunc(MetricMemoHits,
			"Condition memo cache hits by cache (regex: compiled re: patterns; fields: memoized value splitting).",
			func() uint64 { return conditions.MemoCacheStats()[cache].Hits },
			metrics.L("cache", cache))
		reg.CounterFunc(MetricMemoMisses,
			"Condition memo cache misses by cache.",
			func() uint64 { return conditions.MemoCacheStats()[cache].Misses },
			metrics.L("cache", cache))
	}
	if t := c.Threat; t != nil {
		reg.GaugeFunc(MetricThreatLevel,
			"Current IDS system threat level (1=low, 2=medium, 3=high).",
			func() float64 { return float64(t.Level()) })
		reg.CounterFunc(MetricThreatTransitions,
			"Threat-level changes since process start.", t.Transitions)
	}
	if b := c.Bus; b != nil {
		reg.CounterFunc(MetricIDSReports,
			"GAA-to-IDS reports published on the event bus.", b.Published)
	}
	if s := c.Blocks; s != nil {
		reg.GaugeFunc(MetricActiveBlocks,
			"Live firewall block entries (expired blocks excluded).",
			func() float64 { return float64(s.Len()) })
	}
	if r := c.Reliable; r != nil {
		for _, f := range []struct {
			name, help string
			fn         func(notify.ReliableStats) uint64
		}{
			{MetricNotifyDelivered, "Notifications that reached the transport and succeeded.",
				func(s notify.ReliableStats) uint64 { return s.Delivered }},
			{MetricNotifyFailures, "Notifications that exhausted their retries.",
				func(s notify.ReliableStats) uint64 { return s.Failures }},
			{MetricNotifyAttempts, "Individual notification delivery attempts.",
				func(s notify.ReliableStats) uint64 { return s.Attempts }},
			{MetricNotifyRetries, "Delivery attempts beyond each call's first.",
				func(s notify.ReliableStats) uint64 { return s.Retries }},
			{MetricNotifyShortCircuits, "Notifications rejected while the breaker was open.",
				func(s notify.ReliableStats) uint64 { return s.ShortCircuits }},
			{MetricNotifyBreakerOpens, "Times the notification circuit breaker tripped open.",
				func(s notify.ReliableStats) uint64 { return s.BreakerOpens }},
		} {
			f := f
			reg.CounterFunc(f.name, f.help, func() uint64 { return f.fn(r.Stats()) })
		}
		reg.GaugeFunc(MetricNotifyBreakerState,
			"Notification circuit-breaker state (0=closed, 1=open, 2=half-open).",
			func() float64 { return float64(r.BreakerState()) })
	}
	if st := c.Store; st != nil {
		for _, f := range []struct {
			name, help string
			fn         func(statestore.Stats) uint64
		}{
			{MetricStateAppends, "Adaptive-state WAL records written.",
				func(s statestore.Stats) uint64 { return s.Appends }},
			{MetricStateAppendErrors, "Adaptive-state WAL appends that failed (disk faults).",
				func(s statestore.Stats) uint64 { return s.AppendErrors }},
			{MetricStateSnapshots, "WAL compactions taken.",
				func(s statestore.Stats) uint64 { return s.Snapshots }},
			{MetricStateSnapshotErrors, "WAL compactions that failed.",
				func(s statestore.Stats) uint64 { return s.SnapshotErrors }},
			{MetricStateSyncs, "Explicit WAL fsyncs.",
				func(s statestore.Stats) uint64 { return s.Syncs }},
			{MetricStateSyncErrors, "WAL fsyncs that failed.",
				func(s statestore.Stats) uint64 { return s.SyncErrors }},
		} {
			f := f
			reg.CounterFunc(f.name, f.help, func() uint64 { return f.fn(st.Stats()) })
		}
		reg.GaugeFunc(MetricStateLastSeq,
			"Highest WAL record sequence number issued.",
			func() float64 { return float64(st.Stats().LastSeq) })
		reg.CounterFunc(MetricStateDroppedBytes,
			"Bytes of corrupt WAL tail dropped during the last recovery.",
			func() uint64 { return uint64(st.Recovery().DroppedBytes) })
	}
	if p := c.Persist; p != nil {
		reg.CounterFunc(MetricStateJournalErrors,
			"Adaptive-state journal appends lost to marshal or disk faults (enforcement continues from memory).",
			p.JournalErrors)
		reg.GaugeFunc(MetricStateRestoreDropped,
			"Persisted records dropped at the last restore (blocks already past their deadline).",
			func() float64 { return float64(p.Restored().ExpiredBlocks) })
	}
	if cl := c.Cluster; cl != nil {
		for _, f := range []struct {
			name, help string
			fn         func(cluster.Stats) uint64
		}{
			{MetricClusterPushes, "Replication push round-trips attempted.",
				func(s cluster.Stats) uint64 { return s.Pushes }},
			{MetricClusterRecordsSent, "Adaptive-state records acknowledged by peers.",
				func(s cluster.Stats) uint64 { return s.RecordsSent }},
			{MetricClusterPushFailures, "Replication pushes that failed (peer down, slow, or rejecting).",
				func(s cluster.Stats) uint64 { return s.PushFailures }},
			{MetricClusterRecordsApplied, "Remote records merged into local state.",
				func(s cluster.Stats) uint64 { return s.RecordsApplied }},
			{MetricClusterRecordsDuplicate, "Remote records dropped as duplicates or no-op merges.",
				func(s cluster.Stats) uint64 { return s.RecordsDuplicate }},
			{MetricClusterCorruptFrames, "Replication pushes carrying CRC-invalid or truncated frames.",
				func(s cluster.Stats) uint64 { return s.CorruptFrames }},
			{MetricClusterApplyErrors, "Remote records with valid framing but undecodable payloads.",
				func(s cluster.Stats) uint64 { return s.ApplyErrors }},
			{MetricClusterSnapshotsSent, "Full-state snapshots shipped to peers behind the log horizon.",
				func(s cluster.Stats) uint64 { return s.SnapshotsSent }},
			{MetricClusterSnapshotsApplied, "Full-state snapshots merged from peers.",
				func(s cluster.Stats) uint64 { return s.SnapshotsApplied }},
		} {
			f := f
			reg.CounterFunc(f.name, f.help, func() uint64 { return f.fn(cl.Stats()) })
		}
		reg.GaugeFunc(MetricClusterPeers,
			"Configured replication peers.",
			func() float64 { return float64(len(cl.Stats().Peers)) })
		reg.GaugeFunc(MetricClusterPeersDegraded,
			"Peers without a successful push within the degraded window.",
			func() float64 { return float64(cl.Stats().DegradedPeers) })
		reg.GaugeFunc(MetricClusterConvergenceLag,
			"Largest per-peer count of local records not yet acknowledged.",
			func() float64 { return float64(cl.Stats().MaxLag) })
		reg.GaugeFunc(MetricClusterLogSeq,
			"Replication log head sequence (locally originated mutations).",
			func() float64 { return float64(cl.Stats().Seq) })
	}
	if sc := c.Scorer; sc != nil {
		reg.GaugeFunc(MetricAdaptiveSignal,
			"Smoothed global anomaly signal driving the adaptive threat level.",
			func() float64 { return sc.Stats().Signal })
		reg.GaugeFunc(MetricAdaptiveLevel,
			"Adaptive engine's own hysteresis level (1=low, 2=medium, 3=high).",
			func() float64 { return float64(sc.Stats().Level) })
		reg.GaugeFunc(MetricAdaptiveSources,
			"Live per-source behaviour profiles.",
			func() float64 { return float64(sc.Stats().Sources) })
		reg.GaugeFunc(MetricAdaptiveResources,
			"Live per-resource request-shape profiles.",
			func() float64 { return float64(sc.Stats().Resources) })
		for _, f := range []struct {
			name, help string
			fn         func(adaptive.Stats) uint64
		}{
			{MetricAdaptiveSamples, "Authorization decisions scored by the adaptive engine.",
				func(s adaptive.Stats) uint64 { return s.Samples }},
			{MetricAdaptiveDropped, "Samples dropped because the async queue was full.",
				func(s adaptive.Stats) uint64 { return s.Dropped }},
			{MetricAdaptiveSourceBlocks, "Sources blocked on their per-source anomaly score.",
				func(s adaptive.Stats) uint64 { return s.SourceBlocks }},
			{MetricAdaptiveRaises, "Adaptive threat-level raises.",
				func(s adaptive.Stats) uint64 { return s.Raises }},
			{MetricAdaptiveLowers, "Adaptive threat-level lowers (dwell-gated).",
				func(s adaptive.Stats) uint64 { return s.Lowers }},
		} {
			f := f
			reg.CounterFunc(f.name, f.help, func() uint64 { return f.fn(sc.Stats()) })
		}
	}
	if rl := c.Reloader; rl != nil {
		for _, f := range []struct {
			name, help string
			fn         func(ReloadStats) uint64
		}{
			{MetricReloadAttempts, "Policy reload attempts.",
				func(s ReloadStats) uint64 { return s.Attempts }},
			{MetricReloadApplied, "Policy reloads validated and swapped in.",
				func(s ReloadStats) uint64 { return s.Applied }},
			{MetricReloadRejected, "Policy reload candidates rejected by validation.",
				func(s ReloadStats) uint64 { return s.Rejected }},
			{MetricReloadAutoRollbacks, "Reloads rolled back by the post-swap health probe.",
				func(s ReloadStats) uint64 { return s.AutoRollbacks }},
		} {
			f := f
			reg.CounterFunc(f.name, f.help, func() uint64 { return f.fn(rl.Stats()) })
		}
		reg.GaugeFunc(MetricReloadGeneration,
			"Live policy swap generation.",
			func() float64 { return float64(rl.Stats().Generation) })
		reg.GaugeFunc(MetricReloadProbation,
			"Whether a post-swap health probe is armed (0/1).",
			func() float64 {
				if rl.Stats().Probation {
					return 1
				}
				return 0
			})
	}
}

// MetricsHandler serves reg in Prometheus text exposition format 0.0.4.
func MetricsHandler(reg *metrics.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is drop the connection.
			return
		}
	})
}

// statusWriter captures the response code for the request counter. It
// forwards the optional ResponseWriter interfaces the net/http server
// may rely on: Flusher, Hijacker (websocket/CONNECT upgrades) and
// io.ReaderFrom (sendfile on static responses).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	if hj, ok := w.ResponseWriter.(http.Hijacker); ok {
		return hj.Hijack()
	}
	return nil, nil, http.ErrNotSupported
}

// ReadFrom delegates to io.Copy, which uses the underlying writer's
// ReaderFrom when it has one and plain buffered copying otherwise.
func (w *statusWriter) ReadFrom(src io.Reader) (int64, error) {
	return io.Copy(w.ResponseWriter, src)
}

// InstrumentHandler wraps next with request counting by status-code
// class and a request-duration histogram. The per-class counters are
// resolved once at wrap time, so the per-request cost is one clock pair
// plus two striped atomic adds.
func InstrumentHandler(reg *metrics.Registry, next http.Handler) http.Handler {
	dur := reg.Histogram(MetricHTTPDuration,
		"End-to-end HTTP request duration including the GAA guard phases.", nil)
	var classes [6]*metrics.Counter
	for i, class := range []string{"1xx", "2xx", "3xx", "4xx", "5xx"} {
		classes[i+1] = reg.Counter(MetricHTTPRequests,
			"HTTP requests served by status-code class.",
			metrics.L("code_class", class))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		dur.ObserveDuration(time.Since(start))
		idx := sw.code / 100
		if idx < 1 || idx > 5 {
			idx = 5
		}
		classes[idx].Inc()
	})
}
