package gaahttp

import (
	"bufio"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gaaapi/internal/gaa"
	"gaaapi/internal/ids"
	"gaaapi/internal/metrics"
)

// metricsStack wires a full deployment with the observability layer on:
// policy cache, reliable notifier, crash-safe state store.
func metricsStack(t *testing.T) *Stack {
	t.Helper()
	st, err := NewStack(StackConfig{
		SystemPolicy:  policy72System,
		LocalPolicies: map[string]string{"*": policy72Local},
		DocRoot: map[string]string{
			"/index.html": "home",
		},
		Metrics:        true,
		PolicyCache:    true,
		ReliableNotify: true,
		StateDir:       t.TempDir(),
	})
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}
	return st
}

// TestStackExposition drives traffic through the instrumented stack and
// checks that /gaa/metrics-style exposition is valid Prometheus text
// covering every subsystem the issue names: decisions, phase latency,
// cache, supervision, state store, threat level.
func TestStackExposition(t *testing.T) {
	st := metricsStack(t)
	defer st.Close()

	handler := InstrumentHandler(st.Metrics, st.Server)
	serve := func(target, ip string) int {
		req := httptest.NewRequest("GET", target, nil)
		req.RemoteAddr = ip + ":40000"
		w := httptest.NewRecorder()
		handler.ServeHTTP(w, req)
		return w.Code
	}
	serve("/index.html", "10.9.8.7")      // grant
	serve("/cgi-bin/phf?q=x", "10.9.8.7") // signature denial -> notify, blacklist
	// Fresh IP: the probe above blacklisted 10.9.8.7, so reuse would be
	// denied. This grant also exercises the policy-cache hit path.
	serve("/index.html", "10.9.8.8")
	st.Threat.Set(ids.Medium) // threat transition
	st.Blocks.Block("203.0.113.9", 0)

	rec := httptest.NewRecorder()
	MetricsHandler(st.Metrics).ServeHTTP(rec, httptest.NewRequest("GET", "/gaa/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	body := rec.Body.String()
	fams, err := metrics.Parse(strings.NewReader(body))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	for _, name := range []string{
		gaa.MetricPhaseLatency, gaa.MetricDecisions, gaa.MetricEvaluatorFaults,
		gaa.MetricCacheHits, gaa.MetricCacheMisses, gaa.MetricCacheEvictions,
		MetricThreatLevel, MetricThreatTransitions, MetricIDSReports,
		MetricActiveBlocks, MetricMemoHits, MetricMemoMisses,
		MetricNotifyDelivered, MetricNotifyBreakerState,
		MetricStateAppends, MetricStateLastSeq,
		MetricReloadAttempts, MetricReloadGeneration,
		MetricHTTPRequests, MetricHTTPDuration,
	} {
		if fams[name] == nil {
			t.Errorf("family %s missing from exposition", name)
		}
	}
	for _, name := range []string{gaa.MetricPhaseLatency, MetricHTTPDuration} {
		if err := metrics.CheckHistogramInvariants(fams[name]); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}

	vals := st.Metrics.Values()
	if got := vals[`gaa_decisions_total{decision="yes",phase="check"}`]; got < 2 {
		t.Errorf("yes decisions = %v, want >= 2", got)
	}
	if got := vals[`gaa_decisions_total{decision="no",phase="check"}`]; got < 1 {
		t.Errorf("no decisions = %v, want >= 1", got)
	}
	if got := vals["gaa_threat_level"]; got != float64(ids.Medium) {
		t.Errorf("threat level gauge = %v, want %v", got, float64(ids.Medium))
	}
	if got := vals["gaa_threat_transitions_total"]; got < 1 {
		t.Errorf("threat transitions = %v, want >= 1", got)
	}
	if got := vals["gaa_netblock_active_blocks"]; got != 1 {
		t.Errorf("active blocks gauge = %v, want 1", got)
	}
	if got := vals["gaa_policy_cache_hits_total"]; got < 1 {
		t.Errorf("cache hits = %v, want >= 1", got)
	}
	if got := vals["gaa_state_appends_total"]; got < 1 {
		t.Errorf("state appends = %v, want >= 1 (blacklist + block journaled)", got)
	}
	if got := vals["gaa_notify_delivered_total"]; got < 1 {
		t.Errorf("notifications delivered = %v, want >= 1", got)
	}
	if got := vals["gaa_ids_reports_total"]; got < 1 {
		t.Errorf("ids reports = %v, want >= 1", got)
	}
}

// TestInstrumentHandlerCodeClasses checks the status-class counters and
// duration histogram of the HTTP middleware.
func TestInstrumentHandlerCodeClasses(t *testing.T) {
	reg := metrics.NewRegistry()
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/missing":
			w.WriteHeader(http.StatusNotFound)
		case "/boom":
			w.WriteHeader(http.StatusInternalServerError)
		default:
			w.Write([]byte("ok")) // implicit 200
		}
	})
	h := InstrumentHandler(reg, inner)
	for _, path := range []string{"/", "/", "/missing", "/boom"} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	}
	vals := reg.Values()
	if got := vals[`gaa_http_requests_total{code_class="2xx"}`]; got != 2 {
		t.Errorf("2xx = %v, want 2", got)
	}
	if got := vals[`gaa_http_requests_total{code_class="4xx"}`]; got != 1 {
		t.Errorf("4xx = %v, want 1", got)
	}
	if got := vals[`gaa_http_requests_total{code_class="5xx"}`]; got != 1 {
		t.Errorf("5xx = %v, want 1", got)
	}
	if got := vals["gaa_http_request_duration_seconds_count"]; got != 4 {
		t.Errorf("duration count = %v, want 4", got)
	}
}

// TestRegisterComponentMetricsNilTolerant: an empty component set still
// registers the process-wide memo caches and nothing else.
func TestRegisterComponentMetricsNilTolerant(t *testing.T) {
	reg := metrics.NewRegistry()
	RegisterComponentMetrics(reg, Components{})
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if fams[MetricMemoHits] == nil || fams[MetricMemoMisses] == nil {
		t.Error("memo cache families missing")
	}
	for _, absent := range []string{MetricThreatLevel, MetricNotifyDelivered, MetricStateAppends, MetricReloadAttempts} {
		if fams[absent] != nil {
			t.Errorf("family %s registered for a nil component", absent)
		}
	}
}

// hijackRecorder fakes a hijackable ResponseWriter so the test does not
// need a live TCP server.
type hijackRecorder struct {
	*httptest.ResponseRecorder
	hijacked bool
}

func (h *hijackRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	h.hijacked = true
	return nil, nil, nil
}

// TestStatusWriterForwardsOptionalInterfaces: the instrumentation
// wrapper must not hide Hijacker (connection upgrades) or io.ReaderFrom
// (sendfile) from wrapped handlers.
func TestStatusWriterForwardsOptionalInterfaces(t *testing.T) {
	reg := metrics.NewRegistry()
	rec := &hijackRecorder{ResponseRecorder: httptest.NewRecorder()}
	h := InstrumentHandler(reg, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := w.(io.ReaderFrom); !ok {
			t.Error("wrapped writer lost io.ReaderFrom")
		}
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Fatal("wrapped writer is not an http.Hijacker")
		}
		if _, _, err := hj.Hijack(); err != nil {
			t.Errorf("Hijack: %v", err)
		}
	}))
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if !rec.hijacked {
		t.Error("Hijack did not reach the underlying ResponseWriter")
	}

	// Against a plain (non-hijackable) writer it must fail cleanly, not
	// panic or pretend to succeed.
	sw := &statusWriter{ResponseWriter: httptest.NewRecorder(), code: http.StatusOK}
	if _, _, err := sw.Hijack(); err == nil {
		t.Error("Hijack on a non-hijackable writer: want error, got nil")
	}
	if n, err := sw.ReadFrom(strings.NewReader("body")); n != 4 || err != nil {
		t.Errorf("ReadFrom = (%d, %v), want (4, nil)", n, err)
	}
}
