package gaahttp

import (
	"net/http"
	"strings"
	"testing"

	"gaaapi/internal/ids"
)

// TestAdaptiveConstraintLoop drives the paper's full adaptation cycle
// through the stack: the CGI input bound lives in the runtime value
// store (section 2's adaptive constraint specification); an attack
// escalates the threat level (correlator); the level change tightens
// the bound (value tuner, section 3's "values for thresholds ...
// determined by a host-based IDS and communicated to the GAA-API");
// and a request size that was acceptable in peacetime is now denied —
// all without touching the policy text.
func TestAdaptiveConstraintLoop(t *testing.T) {
	const local = `
neg_access_right apache *
pre_cond_regex gnu *phf*
rr_cond_update_log local on:failure/BadGuys/info:IP
neg_access_right apache *
pre_cond_expr local input_length>@max_input
pos_access_right apache *
`
	st, err := NewStack(StackConfig{
		SystemPolicy:  policy72System,
		LocalPolicies: map[string]string{"*": local},
		DocRoot:       map[string]string{"/index.html": "home"},
		RuntimeValues: map[string]string{"max_input": "1000"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// The host-IDS side: correlator escalates on attack reports; the
	// tuner tightens the input bound at medium threat.
	correlator := ids.NewCorrelator(st.Threat, ids.CorrelatorConfig{MediumAfter: 1, HighAfter: 10})
	tuner := ids.NewValueTuner(st.Values)
	tuner.SetLevelValues(ids.Medium, map[string]string{"max_input": "300"})

	mediumQuery := "/cgi-bin/search?q=" + strings.Repeat("z", 500)

	// Peacetime: a 500-byte query is within the 1000-byte bound.
	if code := serveTarget(t, st, mediumQuery, "10.0.0.5"); code != http.StatusOK {
		t.Fatalf("peacetime 500-byte query = %d, want 200", code)
	}

	// An attacker probes phf; the report reaches the correlator, the
	// threat level rises, and the tuner reacts (synchronously here;
	// Run() does the same from a subscription in a deployment).
	sub := st.Bus.Subscribe(16)
	defer sub.Cancel()
	if code := serveTarget(t, st, "/cgi-bin/phf?Qalias=x", "192.0.2.66"); code != http.StatusForbidden {
		t.Fatalf("attack = %d, want 403", code)
	}
	for len(sub.C) > 0 {
		correlator.Observe(<-sub.C)
	}
	if st.Threat.Level() != ids.Medium {
		t.Fatalf("threat level = %v, want medium", st.Threat.Level())
	}
	tuner.Apply(st.Threat.Level())

	// The same 500-byte query is now over the tightened 300-byte bound.
	if code := serveTarget(t, st, mediumQuery, "10.0.0.5"); code != http.StatusForbidden {
		t.Errorf("wartime 500-byte query = %d, want 403 (tightened bound)", code)
	}
	// Small requests still flow.
	if code := serveTarget(t, st, "/cgi-bin/search?q=ok", "10.0.0.5"); code != http.StatusOK {
		t.Errorf("small query = %d, want 200", code)
	}
}
