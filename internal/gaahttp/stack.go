package gaahttp

import (
	"fmt"
	"io"
	"time"

	"gaaapi/internal/actions"
	"gaaapi/internal/audit"
	"gaaapi/internal/cluster"
	"gaaapi/internal/conditions"
	"gaaapi/internal/gaa"
	"gaaapi/internal/groups"
	"gaaapi/internal/httpd"
	"gaaapi/internal/ids"
	"gaaapi/internal/ids/adaptive"
	"gaaapi/internal/metrics"
	"gaaapi/internal/netblock"
	"gaaapi/internal/notify"
	"gaaapi/internal/statestore"
)

// StackConfig describes a complete protected-web-server deployment.
type StackConfig struct {
	// SystemPolicy is the system-wide EACL source text ("" for none).
	SystemPolicy string
	// LocalPolicies maps object glob patterns to local EACL sources.
	LocalPolicies map[string]string

	// DocRoot maps URL paths to static content.
	DocRoot map[string]string
	// Htaccess maps directories to native .htaccess sources (the
	// baseline Apache access control GAA declines to).
	Htaccess map[string]string
	// Users are Basic-auth credentials (user -> password).
	Users map[string]string

	// NotifyLatency is the synthetic mail-delivery latency (paper
	// section 8 measures with and without notification).
	NotifyLatency time.Duration
	// AsyncNotify delivers notifications on a background worker
	// instead of blocking policy evaluation (an ablation knob).
	AsyncNotify bool
	// PolicyCache enables the composed-policy cache (experiment E4).
	PolicyCache bool
	// SensitiveObjects are glob patterns reported on denial.
	SensitiveObjects []string
	// SpoofedSources are '*'-glob address patterns the simulated
	// network IDS reports as spoofed; source-keyed countermeasures
	// skip them.
	SpoofedSources []string
	// RuntimeValues seeds the '@name' runtime value store (the paper's
	// adaptive constraint specification, section 2); the IDS or an
	// administrator may update Stack.Values afterwards.
	RuntimeValues map[string]string
	// AccessLog, when non-nil, receives common-log-format lines.
	AccessLog io.Writer
	// Clock overrides time.Now for deterministic runs.
	Clock func() time.Time

	// EvaluatorTimeout bounds every condition-evaluator call; a hung
	// evaluator degrades to MAYBE at the deadline (0: off).
	EvaluatorTimeout time.Duration
	// EvaluatorWrapper, when non-nil, wraps every registered evaluator
	// beneath the supervision layer — the fault-injection seam
	// (internal/faults).
	EvaluatorWrapper func(gaa.Evaluator) gaa.Evaluator
	// NotifierWrapper, when non-nil, wraps the notification transport
	// (between the mailbox and the retry/breaker layer).
	NotifierWrapper func(notify.Notifier) notify.Notifier
	// ReliableNotify wraps the transport in notify.NewReliable
	// (bounded retry + circuit breaker); the handle is Stack.Reliable.
	ReliableNotify bool

	// StateDir, when non-empty, makes the adaptive state (blocks,
	// threat level, lockout counters, blacklist groups) crash-safe:
	// mutations are journaled to a WAL under the directory and a
	// restart restores them (internal/statestore).
	StateDir string
	// Fsync is the WAL flush policy: "always", "interval" (default) or
	// "never".
	Fsync string
	// SnapshotEvery compacts the WAL after this many records (default
	// 4096).
	SnapshotEvery int
	// StoreFS overrides the store's filesystem (disk-fault drills).
	StoreFS statestore.FS

	// Metrics turns on the observability layer: a metrics.Registry on
	// Stack.Metrics carrying the GAA phase instruments
	// (gaa.WithMetrics) plus every component's collect-time metrics
	// (RegisterComponentMetrics). Serve it with MetricsHandler.
	Metrics bool

	// Adaptive, when non-nil, enables the self-adaptive threat-scoring
	// engine: the guard feeds it every authorization decision, it
	// drives the threat manager through its hysteresis state machine,
	// blocks hot sources, and its score/profile records persist and
	// replicate with the rest of the adaptive state.
	Adaptive *adaptive.Config

	// NodeID enables cluster mode: the node replicates its adaptive
	// state to Peers and accepts pushes at the replicate endpoint
	// (Stack.Cluster.Handler). Works with or without StateDir.
	NodeID string
	// Peers are the base URLs of the other fleet members.
	Peers []string
	// ClusterTransport overrides peer delivery (in-process tests).
	ClusterTransport cluster.Transport
	// ReplicationInterval overrides the push cadence (default 100ms).
	ReplicationInterval time.Duration
}

// Stack is a fully wired deployment: the GAA-API with all built-in
// conditions and actions, the IDS substrate, the Apache-analog server
// with the GAA guard in front of the htaccess baseline, and handles to
// every component for inspection.
type Stack struct {
	API      *gaa.API
	Guard    *Guard
	Server   *httpd.Server
	Threat   *ids.Manager
	Bus      *ids.Bus
	Sigs     *ids.DB
	Anomaly  *ids.Detector
	Groups   *groups.Store
	Counters *conditions.Counters
	Blocks   *netblock.Set
	Mailbox  *notify.Mailbox
	Reliable *notify.Reliable
	Audit    *audit.Ring
	Network  *ids.StaticSpoofList
	Scorer   *adaptive.Engine
	Values   *gaa.Values
	System   *gaa.MemorySource
	Local    *gaa.MemorySource

	// SystemSwap and LocalSwap are the live policy swap points the
	// guard serves from; Reloader swaps validated bundles through them.
	SystemSwap *gaa.SwappableSource
	LocalSwap  *gaa.SwappableSource
	// Reloader validates and applies hot policy reloads; its Health
	// window drives the post-swap rollback probe.
	Reloader *Reloader
	// Store and Persist are the crash-safe state store and its adaptive
	// wiring (Store nil without StateDir; Persist also wired store-less
	// in cluster mode, as the replication tap and merge point).
	Store   *statestore.Store
	Persist *statestore.Adaptive
	// Cluster is the replication node (nil unless NodeID was set).
	Cluster *cluster.Node

	// Metrics is the observability registry (nil unless
	// StackConfig.Metrics was set).
	Metrics *metrics.Registry

	async *notify.Async
}

// NewStack wires everything. The returned stack must be Closed when an
// async notifier was requested.
func NewStack(cfg StackConfig) (*Stack, error) {
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	st := &Stack{
		Threat:   ids.NewManager(ids.Low),
		Bus:      ids.NewBus(),
		Sigs:     ids.NewDB(ids.DefaultSignatures()...),
		Anomaly:  ids.NewDetector(ids.DefaultAnomalyConfig()),
		Groups:   groups.NewStore(),
		Counters: conditions.NewCounters(clock),
		Blocks:   netblock.NewSet(netblock.WithClock(clock)),
		Mailbox:  notify.NewMailbox(cfg.NotifyLatency),
		Audit:    audit.NewRing(1024),
		Network:  ids.NewStaticSpoofList(0.9, cfg.SpoofedSources...),
		Values:   gaa.NewValues(),
		System:   gaa.NewMemorySource(),
		Local:    gaa.NewMemorySource(),
	}
	for name, value := range cfg.RuntimeValues {
		st.Values.Set(name, value)
	}

	// The adaptive scorer exists before statestore.Attach so restore
	// and journaling cover its score/profile records.
	if cfg.Adaptive != nil {
		st.Scorer = adaptive.New(*cfg.Adaptive, st.Threat, st.Blocks)
	}

	// Crash-safe adaptive state: restore what a previous process
	// journaled, then journal every further mutation. Must happen
	// before any traffic mutates the components.
	if cfg.StateDir != "" {
		fsyncPolicy, err := statestore.ParseFsyncPolicy(cfg.Fsync)
		if err != nil {
			return nil, err
		}
		store, err := statestore.Open(cfg.StateDir, statestore.Options{
			Fsync:         fsyncPolicy,
			SnapshotEvery: cfg.SnapshotEvery,
			FS:            cfg.StoreFS,
			Clock:         clock,
		})
		if err != nil {
			return nil, err
		}
		persist, err := statestore.Attach(store, statestore.Components{
			Blocks:   st.Blocks,
			Threat:   st.Threat,
			Counters: st.Counters,
			Groups:   st.Groups,
			Scorer:   st.Scorer,
			Clock:    clock,
		})
		if err != nil {
			store.Close()
			return nil, err
		}
		st.Store, st.Persist = store, persist
	}

	// Cluster mode: replicate adaptive-state mutations to the fleet.
	// The statestore tap works with or without a disk journal, so a
	// store-less node still ships and merges state.
	if cfg.NodeID != "" || len(cfg.Peers) > 0 {
		if st.Persist == nil {
			persist, err := statestore.Attach(nil, statestore.Components{
				Blocks:   st.Blocks,
				Threat:   st.Threat,
				Counters: st.Counters,
				Groups:   st.Groups,
				Scorer:   st.Scorer,
				Clock:    clock,
			})
			if err != nil {
				return nil, err
			}
			st.Persist = persist
		}
		// No Clock override: replication timing (push tickers, breaker
		// cooldowns, the degraded window, epoch derivation) is wall
		// clock even under a simulated campaign clock — the pushers run
		// on real goroutines, so a frozen simulated clock would wedge
		// the circuit breaker open forever. Record deadlines still use
		// the component clock via the statestore merge rules.
		node, err := cluster.New(cluster.Config{
			NodeID:       cfg.NodeID,
			Peers:        cfg.Peers,
			State:        st.Persist,
			Transport:    cfg.ClusterTransport,
			PushInterval: cfg.ReplicationInterval,
		})
		if err != nil {
			if st.Store != nil {
				st.Store.Close()
			}
			return nil, err
		}
		st.Cluster = node
		node.Start()
	}

	var apiOpts []gaa.Option
	apiOpts = append(apiOpts, gaa.WithClock(clock), gaa.WithValues(st.Values))
	if cfg.Metrics {
		st.Metrics = metrics.NewRegistry()
		apiOpts = append(apiOpts, gaa.WithMetrics(st.Metrics),
			gaa.WithMetricsSampling(gaa.DefaultMetricsSampleShift))
	}
	if cfg.PolicyCache {
		apiOpts = append(apiOpts, gaa.WithPolicyCache(1024))
	}
	if cfg.EvaluatorTimeout > 0 {
		apiOpts = append(apiOpts, gaa.WithEvaluatorTimeout(cfg.EvaluatorTimeout))
	}
	if cfg.EvaluatorWrapper != nil {
		apiOpts = append(apiOpts, gaa.WithEvaluatorWrapper(cfg.EvaluatorWrapper))
	}
	st.API = gaa.New(apiOpts...)

	conditions.Register(st.API, conditions.Deps{
		Threat:     st.Threat,
		Groups:     st.Groups,
		Counters:   st.Counters,
		Signatures: st.Sigs,
	})
	var notifier notify.Notifier = st.Mailbox
	if cfg.NotifierWrapper != nil {
		notifier = cfg.NotifierWrapper(notifier)
	}
	if cfg.ReliableNotify {
		st.Reliable = notify.NewReliable(notifier)
		notifier = st.Reliable
	}
	if cfg.AsyncNotify {
		st.async = notify.NewAsync(notifier, 256)
		notifier = st.async
	}
	actions.Register(st.API, actions.Deps{
		Notifier: notifier,
		Groups:   st.Groups,
		Audit:    st.Audit,
		Threat:   st.Threat,
		Blocks:   st.Blocks,
		Counters: st.Counters,
		Spoof:    st.Network,
	})

	if cfg.SystemPolicy != "" {
		if err := st.System.AddPolicy("*", cfg.SystemPolicy); err != nil {
			return nil, fmt.Errorf("system policy: %w", err)
		}
	}
	for pattern, src := range cfg.LocalPolicies {
		if err := st.Local.AddPolicy(pattern, src); err != nil {
			return nil, fmt.Errorf("local policy %q: %w", pattern, err)
		}
	}

	// The guard serves through swap points so a validated policy
	// reload can replace both source levels atomically.
	st.SystemSwap = gaa.NewSwappableSource(st.System)
	st.LocalSwap = gaa.NewSwappableSource(st.Local)
	st.Reloader = NewReloader(ReloadConfig{
		System: st.SystemSwap,
		Local:  st.LocalSwap,
		Known:  st.API.Known,
	})

	st.Guard = New(Config{
		API:              st.API,
		System:           []gaa.PolicySource{st.SystemSwap},
		Local:            []gaa.PolicySource{st.LocalSwap},
		Bus:              st.Bus,
		Signatures:       st.Sigs,
		Network:          st.Network,
		Anomaly:          st.Anomaly,
		Scorer:           st.Scorer,
		Audit:            st.Audit,
		SensitiveObjects: cfg.SensitiveObjects,
		Health:           st.Reloader,
	})

	htauth := httpd.NewHtpasswd()
	for user, pass := range cfg.Users {
		htauth.SetPassword(user, pass)
	}
	htsrc := httpd.NewMapHtaccessSource()
	for dir, src := range cfg.Htaccess {
		if err := htsrc.SetString(dir, src); err != nil {
			return nil, fmt.Errorf("htaccess %q: %w", dir, err)
		}
	}

	st.Server = httpd.NewServer(httpd.Config{
		DocRoot:   cfg.DocRoot,
		Scripts:   httpd.NewDemoRegistry(),
		Guards:    []httpd.Guard{st.Guard, httpd.NewBaselineGuard(htsrc, nil)},
		Auth:      htauth,
		Blocks:    st.Blocks,
		AccessLog: cfg.AccessLog,
		Clock:     clock,
	})
	if st.Metrics != nil {
		RegisterComponentMetrics(st.Metrics, Components{
			Threat:   st.Threat,
			Bus:      st.Bus,
			Blocks:   st.Blocks,
			Reliable: st.Reliable,
			Store:    st.Store,
			Persist:  st.Persist,
			Reloader: st.Reloader,
			Cluster:  st.Cluster,
			Scorer:   st.Scorer,
		})
	}
	return st, nil
}

// ReloadPolicies parses, analyzes, and — if clean at severity <
// error — atomically applies a replacement policy set. On rejection
// the running policies are untouched and the result carries the
// diagnostics.
func (s *Stack) ReloadPolicies(system string, locals map[string]string) ReloadResult {
	return s.Reloader.ReloadWith(func() (*PolicyBundle, error) {
		return BundleFromStrings(system, locals)
	})
}

// Close releases background workers (the async notifier, the cluster
// pushers) and flushes the state store.
func (s *Stack) Close() {
	if s.Cluster != nil {
		s.Cluster.Stop()
	}
	if s.Scorer != nil {
		s.Scorer.Close() // drains before the store goes away
	}
	if s.async != nil {
		s.async.Close()
	}
	if s.Store != nil {
		s.Store.Close()
	}
}
