// Package gaahttp is the glue between the GAA-API and the web server —
// the paper's modified ap_check_access (section 6): it extracts request
// context into GAA parameters, builds the requested rights, retrieves
// and composes the object's policies, runs the three enforcement
// phases, translates the tri-state answer into Apache-style statuses,
// and reports security-relevant observations to the IDS bus (the seven
// report classes of section 3).
package gaahttp

import (
	"context"
	"strconv"
	"strings"
	"sync"

	"gaaapi/internal/audit"
	"gaaapi/internal/eacl"
	"gaaapi/internal/execctl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/httpd"
	"gaaapi/internal/ids"
	"gaaapi/internal/ids/adaptive"
)

// Config assembles a Guard.
type Config struct {
	// API is the initialized GAA-API with condition and action
	// evaluators registered.
	API *gaa.API
	// System and Local are the policy sources composed per request
	// (paper section 2.1).
	System, Local []gaa.PolicySource
	// Authority names the defining authority of the web server's
	// rights; defaults to "apache".
	Authority string

	// Bus, when non-nil, receives GAA-to-IDS reports.
	Bus *ids.Bus
	// Signatures, when non-nil, classifies denied requests into attack
	// reports with severity and recommendations.
	Signatures *ids.DB
	// Network, when non-nil, is the network-based IDS queried for
	// spoofing indications; spoof-suspected sources get their
	// blacklisting recommendation withdrawn in attack reports (paper
	// section 3).
	Network ids.NetworkIDS
	// Anomaly, when non-nil, is trained on granted requests and
	// consulted for unusual-behaviour reports.
	Anomaly *ids.Detector
	// Scorer, when non-nil, receives one sample per authorization
	// decision — the self-adaptive threat-scoring feed. Unlike the bus
	// reports (only notable requests), the scorer sees every decision,
	// which is what its rate and error-ratio estimators need.
	Scorer *adaptive.Engine
	// Audit, when non-nil, records every authorization decision.
	Audit audit.Logger

	// IllFormedHeaderMax flags requests with more headers as
	// ill-formed (paper section 1: "a large number of HTTP headers");
	// 0 means 64.
	IllFormedHeaderMax int
	// AbnormalInputLength flags larger operation inputs as abnormal
	// parameters (paper section 3 item 2); 0 means 1000, the paper's
	// buffer-overflow bound.
	AbnormalInputLength int
	// SensitiveObjects are glob patterns whose denials are reported as
	// sensitive-access denials (section 3 item 3).
	SensitiveObjects []string

	// Health, when non-nil, receives one observation per request:
	// bad when the decision degraded (MAYBE, evaluator faults, or a
	// retrieval error). The reload health probe reads this to decide
	// post-swap rollbacks.
	Health HealthObserver
}

// Guard implements httpd.Guard over the GAA-API.
type Guard struct {
	cfg Config
}

var _ httpd.Guard = (*Guard)(nil)

// New builds the guard, applying defaults.
func New(cfg Config) *Guard {
	if cfg.Authority == "" {
		cfg.Authority = "apache"
	}
	if cfg.IllFormedHeaderMax <= 0 {
		cfg.IllFormedHeaderMax = 64
	}
	if cfg.AbnormalInputLength <= 0 {
		cfg.AbnormalInputLength = 1000
	}
	return &Guard{cfg: cfg}
}

// ExtractParams converts a request record into GAA parameters (paper
// section 6 step 2b: parameters "classified with type and authority so
// that GAA-API routines ... could find the relevant parameters").
func ExtractParams(rec *httpd.RequestRec) gaa.ParamList {
	// Capacity covers every fixed parameter plus the optional user, so
	// the append below never reallocates.
	return appendParams(make(gaa.ParamList, 0, 9), rec)
}

// appendParams appends the record's parameters to ps; Check feeds it a
// pooled backing array instead of allocating one per request.
func appendParams(ps gaa.ParamList, rec *httpd.RequestRec) gaa.ParamList {
	ps = append(ps, gaa.ParamList{
		{Type: gaa.ParamClientIP, Authority: gaa.AuthorityAny, Value: rec.ClientIP},
		{Type: gaa.ParamRequestURI, Authority: gaa.AuthorityAny, Value: rec.URI},
		{Type: gaa.ParamMethod, Authority: gaa.AuthorityAny, Value: rec.Method},
		{Type: gaa.ParamPath, Authority: gaa.AuthorityAny, Value: rec.Path},
		{Type: gaa.ParamQuery, Authority: gaa.AuthorityAny, Value: rec.Query},
		{Type: gaa.ParamObject, Authority: gaa.AuthorityAny, Value: rec.Object()},
		{Type: gaa.ParamInputLength, Authority: gaa.AuthorityAny, Value: strconv.Itoa(rec.InputLength)},
		{Type: gaa.ParamHeaderCount, Authority: gaa.AuthorityAny, Value: strconv.Itoa(rec.HeaderCount)},
	}...)
	if rec.User != "" {
		ps = append(ps, gaa.Param{Type: gaa.ParamUser, Authority: gaa.AuthorityAny, Value: rec.User})
	}
	return ps
}

// Rights builds the requested rights for a record: the specific
// "<METHOD> <path>" right under the configured authority. Policies
// match it with globs ("*", "GET /cgi-bin/*").
func (g *Guard) Rights(rec *httpd.RequestRec) []eacl.Right {
	return []eacl.Right{{
		Sign:    eacl.Pos,
		DefAuth: g.cfg.Authority,
		Value:   rec.Method + " " + rec.Path,
	}}
}

// checkState is the pooled per-check working set: the request, the
// answer (whose slices CheckAuthorizationInto reuses), and the backing
// arrays for the rights and parameter lists.
type checkState struct {
	req    gaa.Request
	ans    gaa.Answer
	rights [1]eacl.Right
	params [9]gaa.Param
}

var checkPool = sync.Pool{New: func() any { return new(checkState) }}

// Check implements httpd.Guard: the access-control phase plus hooks
// for the execution-control and post-execution phases.
func (g *Guard) Check(rec *httpd.RequestRec) httpd.Verdict {
	ctx := context.Background()
	policy, err := g.cfg.API.GetObjectPolicyInfo(rec.Object(), g.cfg.System, g.cfg.Local)
	if err != nil {
		g.observe(true)
		// Fail closed: a retrieval error must not grant access.
		return httpd.Verdict{Status: httpd.Forbidden("policy retrieval: " + err.Error())}
	}
	cs := checkPool.Get().(*checkState)
	cs.rights[0] = eacl.Right{
		Sign:    eacl.Pos,
		DefAuth: g.cfg.Authority,
		Value:   rec.Method + " " + rec.Path,
	}
	cs.req = gaa.Request{
		Rights: cs.rights[:1],
		Params: appendParams(cs.params[:0], rec),
		Time:   rec.Time,
	}
	req, ans := &cs.req, &cs.ans
	if err := g.cfg.API.CheckAuthorizationInto(ctx, policy, req, ans); err != nil {
		checkPool.Put(cs)
		g.observe(true)
		return httpd.Verdict{Status: httpd.Forbidden("authorization: " + err.Error())}
	}
	g.observe(ans.Decision == gaa.Maybe || len(ans.Faults) > 0)

	g.report(rec, ans)
	g.auditDecision(rec, ans)

	verdict := httpd.Verdict{Status: translate(ans)}
	if len(ans.Mid) > 0 {
		verdict.Monitor = func(snap execctl.Snapshot) bool {
			dec, _ := g.cfg.API.ExecutionControl(ctx, ans, req, snap.Params()...)
			return dec != gaa.No
		}
	}
	if len(ans.Post) > 0 {
		verdict.Post = func(success bool) {
			opStatus := gaa.Yes
			if !success {
				opStatus = gaa.No
			}
			g.cfg.API.PostExecutionActions(ctx, ans, req, opStatus)
		}
	}
	if verdict.Monitor == nil && verdict.Post == nil {
		// The later phases hold no reference to the state; recycle it.
		// (With hooks attached the state rides with the closures and is
		// dropped to the GC when they are.)
		checkPool.Put(cs)
	}
	return verdict
}

// observe reports one request-health observation to the reload probe.
func (g *Guard) observe(bad bool) {
	if g.cfg.Health != nil {
		g.cfg.Health.Observe(bad)
	}
}

// translate maps the GAA answer to the web server's status vocabulary
// (paper section 6 step 2d).
func translate(ans *gaa.Answer) httpd.AccessStatus {
	switch ans.Decision {
	case gaa.Yes:
		return httpd.OK("authorized by GAA policy")
	case gaa.No:
		if ans.Challenge != "" {
			return httpd.AuthRequired(ans.Challenge, "GAA policy requires authentication")
		}
		return httpd.Forbidden("denied by GAA policy")
	default: // Maybe
		// "The server checks whether there is only one unevaluated
		// condition of the type pre_cond_redirect and creates a
		// redirected request using the URL from the condition value."
		if cond, ok := ans.UnevaluatedOnly("redirect"); ok {
			return httpd.Moved(cond.Value, "GAA adaptive redirection")
		}
		return httpd.Declined("GAA uncertain; native access control decides")
	}
}

// report publishes the section 3 report classes to the IDS bus and
// feeds the anomaly profiles and the adaptive scorer.
func (g *Guard) report(rec *httpd.RequestRec, ans *gaa.Answer) {
	principal := rec.User
	if principal == "" {
		principal = rec.ClientIP
	}
	if g.cfg.Bus == nil && g.cfg.Scorer == nil {
		// No consumer for the report classes: keep only the profile
		// training (the pre-existing bus-less behaviour).
		if g.cfg.Anomaly != nil && ans.Decision == gaa.Yes {
			g.cfg.Anomaly.Train(principal, rec.Path, rec.InputLength)
		}
		return
	}

	// worst tracks the highest severity among the threat reports this
	// request triggered; the adaptive scorer receives it with the
	// sample (legitimate-pattern reports do not count — they are
	// profile-building material, not suspicion). The checks run even
	// without a bus so the scorer feed does not depend on bus wiring.
	var worst ids.Severity
	observe := func(sev ids.Severity) {
		if sev > worst {
			worst = sev
		}
	}

	base := ids.Report{
		Time:     rec.Time,
		Source:   g.cfg.Authority,
		ClientIP: rec.ClientIP,
		User:     rec.User,
		Object:   rec.Object(),
	}
	publish := func(r ids.Report) {
		if g.cfg.Bus != nil {
			g.cfg.Bus.Publish(r)
		}
	}
	// 1. Ill-formed requests.
	if g.illFormed(rec) {
		r := base
		r.Kind = ids.IllFormedRequest
		r.Severity = ids.SevMedium
		r.Confidence = 0.7
		r.Info = "malformed request line or excessive headers"
		observe(r.Severity)
		publish(r)
	}
	// 2. Abnormally large parameters.
	if rec.InputLength > g.cfg.AbnormalInputLength {
		r := base
		r.Kind = ids.AbnormalParameters
		r.Severity = ids.SevMedium
		r.Confidence = 0.6
		r.Info = "operation input length " + strconv.Itoa(rec.InputLength)
		observe(r.Severity)
		publish(r)
	}
	switch ans.Decision {
	case gaa.No:
		// 5. Detected application-level attacks, with threat
		// characteristics from the signature database.
		if g.cfg.Signatures != nil {
			if hits := g.cfg.Signatures.Match(rec.URI); len(hits) > 0 {
				r := base
				r.Kind = ids.DetectedAttack
				r.Signature = hits[0].Name
				r.Severity = hits[0].Severity
				r.Confidence = 0.9
				r.Info = hits[0].Kind
				r.Recommendation = hits[0].Recommendation
				if g.cfg.Network != nil {
					if spoofed, conf := g.cfg.Network.SpoofIndication(rec.ClientIP); spoofed {
						r.Recommendation = "do not blacklist: source address suspected spoofed"
						r.Confidence *= 1 - conf
					}
				}
				observe(r.Severity)
				publish(r)
			}
		}
		// 3. Access denials to sensitive objects.
		for _, pat := range g.cfg.SensitiveObjects {
			if eacl.Glob(pat, rec.Object()) {
				r := base
				r.Kind = ids.SensitiveAccessDenial
				r.Severity = ids.SevMedium
				r.Confidence = 0.8
				r.Info = "denied access to sensitive object"
				observe(r.Severity)
				publish(r)
				break
			}
		}
	case gaa.Yes:
		// 6. Unusual (but authorized) behaviour per the anomaly
		// profiles; 7. legitimate patterns for profile building.
		if g.cfg.Anomaly != nil && g.cfg.Anomaly.Unusual(principal, rec.Path, rec.InputLength) {
			r := base
			r.Kind = ids.UnusualBehavior
			r.Severity = ids.SevMedium
			r.Confidence = 0.5
			r.Info = "request deviates from trained profile"
			observe(r.Severity)
			publish(r)
		} else if g.cfg.Bus != nil {
			r := base
			r.Kind = ids.LegitimatePattern
			r.Severity = ids.SevInfo
			r.Confidence = 0.5
			g.cfg.Bus.Publish(r)
		}
	}

	// Train profiles on granted traffic regardless of bus wiring.
	if g.cfg.Anomaly != nil && ans.Decision == gaa.Yes {
		g.cfg.Anomaly.Train(principal, rec.Path, rec.InputLength)
	}

	if g.cfg.Scorer != nil {
		g.cfg.Scorer.ObserveRequest(adaptive.Sample{
			Time:     rec.Time,
			Source:   rec.ClientIP,
			User:     rec.User,
			Path:     rec.Path,
			Query:    rec.Query,
			InputLen: rec.InputLength,
			Denied:   ans.Decision == gaa.No,
			Severity: worst,
		})
	}
}

// illFormed applies cheap application-level sanity checks (paper
// section 3 item 1: "the API can apply application level knowledge to
// determine whether the request is properly formed").
func (g *Guard) illFormed(rec *httpd.RequestRec) bool {
	if rec.HeaderCount > g.cfg.IllFormedHeaderMax {
		return true
	}
	for _, r := range rec.URI {
		if r < 0x20 && r != '\t' {
			return true
		}
	}
	return strings.Contains(rec.URI, "\\")
}

func (g *Guard) auditDecision(rec *httpd.RequestRec, ans *gaa.Answer) {
	if g.cfg.Audit == nil {
		return
	}
	_ = g.cfg.Audit.Log(audit.Record{
		Time:     rec.Time,
		Kind:     "gaa_check_authorization",
		Object:   rec.Object(),
		Right:    g.cfg.Authority + " " + rec.Method + " " + rec.Path,
		Decision: ans.Decision.String(),
		ClientIP: rec.ClientIP,
		User:     rec.User,
	})
}
