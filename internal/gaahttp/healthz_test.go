package gaahttp

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"gaaapi/internal/cluster"
)

func healthzGet(t *testing.T, s *Stack) (int, Healthz) {
	t.Helper()
	rec := httptest.NewRecorder()
	HealthzHandler(s.Health).ServeHTTP(rec, httptest.NewRequest("GET", HealthzPath, nil))
	var h Healthz
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("healthz decode: %v (%q)", err, rec.Body.String())
	}
	return rec.Code, h
}

func TestHealthzSingleNode(t *testing.T) {
	s, err := NewStack(StackConfig{StateDir: t.TempDir()})
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}
	defer s.Close()
	code, h := healthzGet(t, s)
	if code != 200 || !h.Ready {
		t.Fatalf("single node not ready: %d %+v", code, h)
	}
	if h.Store != "ok" || h.Replication != "none" {
		t.Fatalf("healthz = %+v", h)
	}
}

func TestHealthzInMemoryNode(t *testing.T) {
	s, err := NewStack(StackConfig{})
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}
	defer s.Close()
	code, h := healthzGet(t, s)
	if code != 200 || h.Store != "none" {
		t.Fatalf("in-memory node: %d %+v", code, h)
	}
}

func TestHealthzReplicationStates(t *testing.T) {
	lt := cluster.NewLoopTransport()
	a, err := NewStack(StackConfig{
		NodeID:              "a",
		Peers:               []string{"loop://b"},
		ClusterTransport:    lt,
		ReplicationInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewStack a: %v", err)
	}
	defer a.Close()
	b, err := NewStack(StackConfig{
		NodeID:           "b",
		ClusterTransport: lt,
	})
	if err != nil {
		t.Fatalf("NewStack b: %v", err)
	}
	defer b.Close()
	lt.Register("loop://b", b.Cluster)

	// Nothing pending: replication ok, ready.
	if code, h := healthzGet(t, a); code != 200 || h.Replication != "ok" {
		t.Fatalf("idle cluster: %d %+v", code, h)
	}

	// Cut the link and mutate: a lags, then degrades. While only
	// catching up (not yet degraded) the node reports 503; once the
	// peer is declared degraded the node is ready again — a partition
	// must not pull every surviving node out of the pool.
	lt.Cut("loop://b")
	a.Blocks.Block("203.0.113.1", time.Hour)
	if code, h := healthzGet(t, a); code != 503 || h.Replication != "catching-up" || h.Ready {
		t.Fatalf("lagging cluster: %d %+v", code, h)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, h := healthzGet(t, a)
		if h.Replication == "degraded" {
			if code != 200 || !h.Ready || h.DegradedPeers != 1 {
				t.Fatalf("degraded cluster: %d %+v", code, h)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer never declared degraded: %d %+v", code, h)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Heal: the block replicates, lag drains, back to ok.
	lt.Heal("loop://b")
	deadline = time.Now().Add(10 * time.Second)
	for {
		code, h := healthzGet(t, a)
		if h.Replication == "ok" {
			if code != 200 || !b.Blocks.Blocked("203.0.113.1") {
				t.Fatalf("healed cluster: %d %+v blocked=%v", code, h, b.Blocks.Blocked("203.0.113.1"))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never converged: %d %+v", code, h)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
