package gaahttp

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gaaapi/internal/ids"
	"gaaapi/internal/ids/adaptive"
)

// simClock is a settable deterministic clock for stack tests.
type simClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *simClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *simClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

const adaptiveScoringPolicy = `
neg_access_right apache GET /admin/*
pos_access_right apache *
`

func adaptiveStack(t *testing.T) (*Stack, *simClock) {
	t.Helper()
	clock := &simClock{now: time.Date(2003, 5, 1, 9, 0, 0, 0, time.UTC)}
	acfg := adaptive.Defaults()
	acfg.Synchronous = true
	acfg.HalfLife = 10 * time.Second
	acfg.MinSamples = 5
	// Per-source enforcement should lead global escalation for a
	// single scanning address; see the engine unit tests for the
	// default-threshold dynamics.
	acfg.BlockScore = 1.1
	st, err := NewStack(StackConfig{
		LocalPolicies: map[string]string{"*": adaptiveScoringPolicy},
		DocRoot: map[string]string{
			"/index.html":  "home",
			"/docs/a.html": "a",
			"/docs/b.html": "b",
		},
		Clock:    clock.Now,
		Metrics:  true,
		Adaptive: &acfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	return st, clock
}

func adaptiveGet(st *Stack, target, ip string) int {
	req := httptest.NewRequest("GET", target, nil)
	req.RemoteAddr = ip + ":1"
	w := httptest.NewRecorder()
	st.Server.ServeHTTP(w, req)
	return w.Code
}

// The full wired path: HTTP traffic -> guard -> scorer -> netblock,
// with the attacker blocked per-source while the global threat level
// is still Low.
func TestStackAdaptiveBlocksScanningSource(t *testing.T) {
	st, clock := adaptiveStack(t)

	pages := []string{"/index.html", "/docs/a.html", "/docs/b.html"}
	for i := 0; i < 60; i++ {
		clock.Advance(2 * time.Second)
		if code := adaptiveGet(st, pages[i%len(pages)], "10.0.0.1"); code != http.StatusOK {
			t.Fatalf("baseline request %d = %d", i, code)
		}
	}

	// A scanner probing the denied admin tree from one address.
	blocked := false
	for i := 0; i < 40 && !blocked; i++ {
		clock.Advance(50 * time.Millisecond)
		adaptiveGet(st, fmt.Sprintf("/admin/probe%d?cmd=%%3Bcat%%20%%2Fetc", i), "203.0.113.99")
		blocked = st.Blocks.Blocked("203.0.113.99")
	}
	if !blocked {
		t.Fatalf("scanner never blocked; score=%v signal=%v",
			st.Scorer.SourceScore("203.0.113.99"), st.Scorer.Signal())
	}
	if got := st.Threat.Level(); got != ids.Low {
		t.Fatalf("global threat %s at per-source block time, want low", got)
	}
	// The firewall layer now refuses the scanner outright.
	if code := adaptiveGet(st, "/index.html", "203.0.113.99"); code != http.StatusForbidden {
		t.Fatalf("blocked scanner got %d, want 403", code)
	}
	// Innocent traffic is untouched.
	if code := adaptiveGet(st, "/index.html", "10.0.0.1"); code != http.StatusOK {
		t.Fatalf("innocent source got %d after scanner block", code)
	}
}

// The adaptive gauges and counters ride the metrics endpoint.
func TestStackAdaptiveMetricsExposed(t *testing.T) {
	st, clock := adaptiveStack(t)
	for i := 0; i < 10; i++ {
		clock.Advance(time.Second)
		adaptiveGet(st, "/index.html", "10.0.0.1")
	}
	w := httptest.NewRecorder()
	MetricsHandler(st.Metrics).ServeHTTP(w, httptest.NewRequest("GET", "/gaa/metrics", nil))
	body := w.Body.String()
	for _, name := range []string{
		MetricAdaptiveSignal, MetricAdaptiveLevel, MetricAdaptiveSources,
		MetricAdaptiveResources, MetricAdaptiveSamples, MetricAdaptiveSourceBlocks,
	} {
		if !strings.Contains(body, name) {
			t.Errorf("metrics exposition missing %s", name)
		}
	}
	if !strings.Contains(body, MetricAdaptiveSamples+" 10") {
		t.Errorf("sample counter not tracking requests:\n%s", body)
	}
}
