package gaahttp

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"gaaapi/internal/eacl"
	"gaaapi/internal/eacl/analysis"
	"gaaapi/internal/gaa"
)

// PolicyBundle is a fully parsed candidate policy set: the sources the
// guard would serve from, plus the parsed EACLs the analyzer vets
// before any request sees them.
type PolicyBundle struct {
	// System and Local are the replacement sources.
	System, Local gaa.PolicySource
	// SystemEACLs and LocalEACLs are the parsed policies for analysis.
	SystemEACLs, LocalEACLs []*eacl.EACL
}

// BundleFromStrings parses a candidate policy set from source text: the
// system-wide EACL ("" for none) and local EACLs keyed by object glob.
// A parse error rejects the bundle before analysis.
func BundleFromStrings(system string, locals map[string]string) (*PolicyBundle, error) {
	b := &PolicyBundle{}
	sysMem := gaa.NewMemorySource()
	if system != "" {
		e, err := eacl.ParseString(system)
		if err != nil {
			return nil, fmt.Errorf("system policy: %w", err)
		}
		sysMem.Add("*", e)
		b.SystemEACLs = append(b.SystemEACLs, e)
	}
	b.System = sysMem
	locMem := gaa.NewMemorySource()
	patterns := make([]string, 0, len(locals))
	for p := range locals {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	for _, p := range patterns {
		e, err := eacl.ParseString(locals[p])
		if err != nil {
			return nil, fmt.Errorf("local policy %q: %w", p, err)
		}
		locMem.Add(p, e)
		b.LocalEACLs = append(b.LocalEACLs, e)
	}
	b.Local = locMem
	return b, nil
}

// HealthObserver receives one per-request health observation; the
// guard reports a request as bad when the decision degraded (MAYBE,
// evaluator faults, or a retrieval error).
type HealthObserver interface {
	Observe(bad bool)
}

// Health is a sliding window over recent request-health observations.
type Health struct {
	mu   sync.Mutex
	ring []bool
	n    int // filled
	idx  int
	bad  int
}

// NewHealth returns a window over the last size observations (default
// 128 when size <= 0).
func NewHealth(size int) *Health {
	if size <= 0 {
		size = 128
	}
	return &Health{ring: make([]bool, size)}
}

// Observe records one request outcome.
func (h *Health) Observe(bad bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == len(h.ring) {
		if h.ring[h.idx] {
			h.bad--
		}
	} else {
		h.n++
	}
	h.ring[h.idx] = bad
	if bad {
		h.bad++
	}
	h.idx = (h.idx + 1) % len(h.ring)
}

// Rate returns the bad-observation fraction over the window (0 when
// empty) and the number of observations it covers.
func (h *Health) Rate() (rate float64, observations int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0, 0
	}
	return float64(h.bad) / float64(h.n), h.n
}

// ReloadConfig assembles a Reloader.
type ReloadConfig struct {
	// Load parses a fresh candidate bundle (from disk, memory, ...).
	Load func() (*PolicyBundle, error)
	// System and Local are the live swap points the guard serves from.
	System, Local *gaa.SwappableSource
	// Known is the registration vocabulary for analysis (api.Known);
	// nil disables registration-dependent rules.
	Known func(condType, defAuth string) bool
	// Health is the request-health window backing the post-swap probe;
	// nil allocates a default one.
	Health *Health
	// ProbeWindow is how many post-swap observations the health probe
	// collects before judging the new policy (default 64).
	ProbeWindow int
	// ProbeBadLimit is the degraded-request fraction above which the
	// probe rolls back (default 0.5).
	ProbeBadLimit float64
	// ProbeMargin is how much worse than the pre-swap baseline the
	// probe must be, in addition to ProbeBadLimit, to roll back
	// (default 0.10) — a workload that was already degraded does not
	// condemn the new policy.
	ProbeMargin float64
}

// ReloadResult is the outcome of one reload attempt.
type ReloadResult struct {
	// OK reports that the candidate passed analysis and was swapped in.
	OK bool `json:"ok"`
	// Generation is the live swap generation after the attempt.
	Generation uint64 `json:"generation"`
	// Err is the parse/load error that rejected the attempt ("" when
	// analysis or the swap decided).
	Err string `json:"error,omitempty"`
	// Diagnostics are the analyzer findings (rejecting errors, or
	// ride-along warnings on success).
	Diagnostics []string `json:"diagnostics,omitempty"`
	// Probation reports that the health probe is now watching the new
	// policy and may still roll it back.
	Probation bool `json:"probation,omitempty"`
}

// ReloadStats summarize a Reloader's history for status endpoints.
type ReloadStats struct {
	Attempts      uint64 `json:"attempts"`
	Applied       uint64 `json:"applied"`
	Rejected      uint64 `json:"rejected"`
	AutoRollbacks uint64 `json:"auto_rollbacks"`
	// Generation is the live swap generation.
	Generation uint64 `json:"generation"`
	// Probation reports an armed post-swap health probe.
	Probation bool `json:"probation,omitempty"`
	// LastError and LastDiagnostics describe the most recent rejected
	// attempt.
	LastError       string   `json:"last_error,omitempty"`
	LastDiagnostics []string `json:"last_diagnostics,omitempty"`
}

// Reloader validates and atomically applies policy reloads, and rolls
// them back when the post-swap health probe degrades. It also
// implements HealthObserver: wire it into the guard's Health hook.
type Reloader struct {
	cfg      ReloadConfig
	analyzer *analysis.Analyzer

	mu    sync.Mutex
	stats ReloadStats

	// probingFlag mirrors probing so Observe can skip the mutex on the
	// (overwhelmingly common) non-probation path.
	probingFlag atomic.Bool

	// probation state, guarded by mu.
	probing              bool
	probeBad, probeTotal int
	baselineRate         float64
	prevSystem           gaa.PolicySource
	prevLocal            gaa.PolicySource
}

// NewReloader builds a reloader; System and Local are required.
func NewReloader(cfg ReloadConfig) *Reloader {
	if cfg.Health == nil {
		cfg.Health = NewHealth(0)
	}
	if cfg.ProbeWindow <= 0 {
		cfg.ProbeWindow = 64
	}
	if cfg.ProbeBadLimit <= 0 {
		cfg.ProbeBadLimit = 0.5
	}
	if cfg.ProbeMargin <= 0 {
		cfg.ProbeMargin = 0.10
	}
	return &Reloader{cfg: cfg, analyzer: analysis.New()}
}

// Health returns the health window the probe reads.
func (r *Reloader) Health() *Health { return r.cfg.Health }

// Stats returns the reload history.
func (r *Reloader) Stats() ReloadStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stats
	st.Generation = r.cfg.Local.Generation()
	st.Probation = r.probing
	return st
}

// Reload loads a candidate via the configured loader, analyzes it, and
// — only if no finding reaches severity error — atomically swaps it
// in, arming the health probe. On rejection the previous policy keeps
// serving untouched.
func (r *Reloader) Reload() ReloadResult { return r.ReloadWith(r.cfg.Load) }

// ReloadWith is Reload with an explicit candidate loader (e.g. a new
// in-memory policy set).
func (r *Reloader) ReloadWith(load func() (*PolicyBundle, error)) ReloadResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Attempts++

	fail := func(err string, diags []string) ReloadResult {
		r.stats.Rejected++
		r.stats.LastError = err
		r.stats.LastDiagnostics = diags
		return ReloadResult{
			Generation:  r.cfg.Local.Generation(),
			Err:         err,
			Diagnostics: diags,
		}
	}

	if load == nil {
		return fail("no policy loader configured", nil)
	}
	bundle, err := load()
	if err != nil {
		return fail(err.Error(), nil)
	}
	diags := r.analyze(bundle)
	rendered := make([]string, len(diags))
	blocking := false
	for i, d := range diags {
		rendered[i] = d.String()
		if d.Severity >= analysis.SeverityError {
			blocking = true
		}
	}
	if blocking {
		return fail("analysis rejected the candidate policy set", rendered)
	}

	// Passed: swap atomically. In-flight requests finish on the old
	// sources; the generation bump invalidates the policy cache for
	// everything after.
	baseline, _ := r.cfg.Health.Rate()
	prevSys, _ := r.cfg.System.Swap(bundle.System)
	prevLoc, gen := r.cfg.Local.Swap(bundle.Local)
	r.stats.Applied++
	r.stats.LastError = ""
	r.stats.LastDiagnostics = rendered
	r.probing = true
	r.probingFlag.Store(true)
	r.probeBad, r.probeTotal = 0, 0
	r.baselineRate = baseline
	r.prevSystem, r.prevLocal = prevSys, prevLoc
	return ReloadResult{OK: true, Generation: gen, Diagnostics: rendered, Probation: true}
}

// analyze runs the full file-level and composition-level rule catalog
// over a candidate bundle.
func (r *Reloader) analyze(b *PolicyBundle) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, e := range b.SystemEACLs {
		out = append(out, r.analyzer.AnalyzeFile(&analysis.File{EACL: e, Known: r.cfg.Known})...)
	}
	for _, e := range b.LocalEACLs {
		out = append(out, r.analyzer.AnalyzeFile(&analysis.File{EACL: e, Known: r.cfg.Known})...)
	}
	out = append(out, r.analyzer.AnalyzeComposition(analysis.NewComposition(b.SystemEACLs, b.LocalEACLs))...)
	return out
}

// Observe implements HealthObserver: it feeds the sliding window and,
// during probation, judges the freshly swapped policy — rolling it
// back if the degraded-request rate exceeds both the absolute limit
// and the pre-swap baseline by the configured margin.
func (r *Reloader) Observe(bad bool) {
	r.cfg.Health.Observe(bad)
	if !r.probingFlag.Load() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.probing {
		return
	}
	r.probeTotal++
	if bad {
		r.probeBad++
	}
	if r.probeTotal < r.cfg.ProbeWindow {
		return
	}
	rate := float64(r.probeBad) / float64(r.probeTotal)
	if rate > r.cfg.ProbeBadLimit && rate > r.baselineRate+r.cfg.ProbeMargin {
		r.rollbackLocked()
		r.stats.AutoRollbacks++
		r.stats.LastError = fmt.Sprintf(
			"health probe rolled back reload: degraded rate %.2f (baseline %.2f) over %d requests",
			rate, r.baselineRate, r.probeTotal)
	}
	r.probing = false
	r.probingFlag.Store(false)
	r.prevSystem, r.prevLocal = nil, nil
}

// Rollback manually reverts the most recent applied reload while its
// probation is still open; it reports whether anything was reverted.
func (r *Reloader) Rollback() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.probing {
		return false
	}
	r.rollbackLocked()
	r.probing = false
	r.probingFlag.Store(false)
	r.prevSystem, r.prevLocal = nil, nil
	return true
}

func (r *Reloader) rollbackLocked() {
	if r.prevSystem != nil {
		r.cfg.System.Swap(r.prevSystem)
	}
	if r.prevLocal != nil {
		r.cfg.Local.Swap(r.prevLocal)
	}
}
