package gaahttp

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gaaapi/internal/audit"
	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/httpd"
)

// failingSource errors on every operation.
type failingSource struct{ err error }

func (f failingSource) Policies(string) ([]*eacl.EACL, error) { return nil, f.err }
func (f failingSource) Revision(string) (string, error)       { return "", f.err }

// TestGuardFailsClosedOnPolicyError: a policy-retrieval failure must
// not grant access.
func TestGuardFailsClosedOnPolicyError(t *testing.T) {
	g := New(Config{
		API:    gaa.New(),
		System: []gaa.PolicySource{failingSource{errors.New("disk on fire")}},
	})
	rec := httpd.NewRequestRec(httptest.NewRequest("GET", "/x", nil), nil, time.Now())
	v := g.Check(rec)
	if v.Status.Kind != httpd.StatusForbidden {
		t.Errorf("verdict = %v, want Forbidden (fail closed)", v.Status.Kind)
	}
}

// TestGuardAuditsDecisions: the Audit logger receives one record per
// authorization.
func TestGuardAuditsDecisions(t *testing.T) {
	ring := audit.NewRing(8)
	src := gaa.NewMemorySource()
	if err := src.AddPolicy("*", "pos_access_right apache *"); err != nil {
		t.Fatal(err)
	}
	g := New(Config{
		API:   gaa.New(),
		Local: []gaa.PolicySource{src},
		Audit: ring,
	})
	req := httptest.NewRequest("GET", "/doc.html", nil)
	req.RemoteAddr = "10.0.0.3:1"
	g.Check(httpd.NewRequestRec(req, nil, time.Now()))
	recs := ring.Records()
	if len(recs) != 1 {
		t.Fatalf("audit records = %d, want 1", len(recs))
	}
	if recs[0].Kind != "gaa_check_authorization" || recs[0].Decision != "yes" || recs[0].Object != "/doc.html" {
		t.Errorf("record = %+v", recs[0])
	}
}

// TestIllFormedReportPublished: control characters in the request line
// produce an ill_formed_request report even when the request is
// ultimately granted.
func TestIllFormedReportPublished(t *testing.T) {
	st, err := NewStack(StackConfig{
		LocalPolicies: map[string]string{"*": "pos_access_right apache *"},
		DocRoot:       map[string]string{"/x": "x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sub := st.Bus.Subscribe(16)
	defer sub.Cancel()

	rec := &httpd.RequestRec{
		Time: time.Now(), Method: "GET", Path: "/x",
		URI: "GET /\x01x", ClientIP: "10.0.0.1", HeaderCount: 1,
	}
	st.Guard.Check(rec)
	found := false
	for len(sub.C) > 0 {
		if (<-sub.C).Kind.String() == "ill_formed_request" {
			found = true
		}
	}
	if !found {
		t.Error("no ill_formed_request report")
	}
}

// TestUnusualBehaviorReport: a trained client deviating wildly gets an
// unusual_behavior report on a GRANTED request.
func TestUnusualBehaviorReport(t *testing.T) {
	st, err := NewStack(StackConfig{
		LocalPolicies: map[string]string{"*": "pos_access_right apache *"},
		DocRoot:       map[string]string{"/index.html": "x", "/odd.html": "y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Train well past MinTraining on a constant profile.
	for i := 0; i < 30; i++ {
		st.Anomaly.Train("10.7.7.7", "/index.html", 0)
	}
	sub := st.Bus.Subscribe(16)
	defer sub.Cancel()

	req := httptest.NewRequest("GET", "/odd.html?q="+strings.Repeat("z", 400), nil)
	req.RemoteAddr = "10.7.7.7:1"
	w := httptest.NewRecorder()
	st.Server.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("granted request = %d", w.Code)
	}
	found := false
	for len(sub.C) > 0 {
		if (<-sub.C).Kind.String() == "unusual_behavior" {
			found = true
		}
	}
	if !found {
		t.Error("no unusual_behavior report for a wildly deviating request")
	}
}

// TestStackCloseFlushesAsyncNotifier: Close drains queued messages.
func TestStackCloseFlushesAsyncNotifier(t *testing.T) {
	st, err := NewStack(StackConfig{
		LocalPolicies: map[string]string{"*": `
neg_access_right apache *
rr_cond_notify local on:failure/sysadmin/info:x
`},
		AsyncNotify:   true,
		NotifyLatency: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := httpd.NewRequestRec(httptest.NewRequest("GET", "/x", nil), nil, time.Now())
	st.Guard.Check(rec)
	st.Close() // must flush the queue
	if st.Mailbox.Count() != 1 {
		t.Errorf("messages after Close = %d, want 1 (flushed)", st.Mailbox.Count())
	}
	st.Close() // idempotent... Close on a closed stack must not panic
}

// TestGuardAuthorizationErrorFailsClosed covers the CheckAuthorization
// error path (nil policy is impossible through GetObjectPolicyInfo, so
// drive it directly).
func TestGuardAuthorizationErrorFailsClosed(t *testing.T) {
	api := gaa.New()
	if _, err := api.CheckAuthorization(context.Background(), nil, gaa.NewRequest("apache", "GET /")); err == nil {
		t.Fatal("expected error")
	}
}
