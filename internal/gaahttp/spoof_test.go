package gaahttp

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gaaapi/internal/ids"
)

func newRequest(target, ip string) *http.Request {
	req := httptest.NewRequest("GET", target, nil)
	req.RemoteAddr = ip + ":40000"
	return req
}

// TestSpoofSafeguardEndToEnd drives the paper's anti-DoS safeguard
// through the full stack: an attack arriving from a spoof-suspected
// source is still denied, but the automated countermeasures (blacklist
// growth) are withheld and the attack report's recommendation is
// downgraded, so an attacker cannot weaponize the response system
// against an impersonated host.
func TestSpoofSafeguardEndToEnd(t *testing.T) {
	st, err := NewStack(StackConfig{
		SystemPolicy:   policy72System,
		LocalPolicies:  map[string]string{"*": policy72Local},
		DocRoot:        map[string]string{"/index.html": "home"},
		SpoofedSources: []string{"198.51.100.*"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sub := st.Bus.Subscribe(32)
	defer sub.Cancel()

	// Attack "from" the spoof-suspected range: denied, not blacklisted.
	w := serve(t, st, phfFrom("198.51.100.7"))
	if w != http.StatusForbidden {
		t.Fatalf("spoofed attack = %d, want 403 (still denied)", w)
	}
	if st.Groups.Contains("BadGuys", "198.51.100.7") {
		t.Error("spoof-suspected source blacklisted")
	}
	// The victim of the impersonation can still reach the server.
	if code := serveTarget(t, st, "/index.html", "198.51.100.7"); code != http.StatusOK {
		t.Errorf("impersonated host = %d, want 200 (no collateral lockout)", code)
	}

	// A genuine attacker is blacklisted as usual.
	if code := serve(t, st, phfFrom("192.0.2.1")); code != http.StatusForbidden {
		t.Fatalf("genuine attack = %d, want 403", code)
	}
	if !st.Groups.Contains("BadGuys", "192.0.2.1") {
		t.Error("genuine attacker not blacklisted")
	}

	// The attack reports differ in recommendation.
	var spoofedRec, genuineRec string
	for len(sub.C) > 0 {
		r := <-sub.C
		if r.Kind != ids.DetectedAttack {
			continue
		}
		switch r.ClientIP {
		case "198.51.100.7":
			spoofedRec = r.Recommendation
		case "192.0.2.1":
			genuineRec = r.Recommendation
		}
	}
	if !strings.Contains(spoofedRec, "do not blacklist") {
		t.Errorf("spoofed report recommendation = %q, want withdrawal", spoofedRec)
	}
	if !strings.Contains(genuineRec, "blacklist source address") {
		t.Errorf("genuine report recommendation = %q", genuineRec)
	}
}

func phfFrom(ip string) reqSpec {
	return reqSpec{target: "/cgi-bin/phf?Qalias=x", ip: ip}
}

type reqSpec struct {
	target string
	ip     string
}

func serve(t *testing.T, st *Stack, spec reqSpec) int {
	t.Helper()
	return serveTarget(t, st, spec.target, spec.ip)
}

func serveTarget(t *testing.T, st *Stack, target, ip string) int {
	t.Helper()
	w := httptest.NewRecorder()
	st.Server.ServeHTTP(w, newRequest(target, ip))
	return w.Code
}
