package gaahttp

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestAccountDisableRecipe demonstrates the paper's section 1
// "disabling local account" countermeasure as a pure policy recipe —
// no new mechanism needed: a neg entry keyed on membership in a
// DisabledAccounts group, populated by rr_cond_update_log with
// info:USER when a user trips an abuse signature.
func TestAccountDisableRecipe(t *testing.T) {
	const local = `
# Accounts land here when they abuse the service; membership is keyed
# on the authenticated user, not the address.
neg_access_right apache *
pre_cond_accessid_GROUP local DisabledAccounts

# Tripping the abuse signature disables the account.
neg_access_right apache *
pre_cond_regex gnu *forbidden-export*
rr_cond_update_log local on:failure/DisabledAccounts/info:USER
rr_cond_notify local on:failure/sysadmin/info:account-disabled

pos_access_right apache *
pre_cond_accessid_USER apache *
`
	st, err := NewStack(StackConfig{
		LocalPolicies: map[string]string{"*": local},
		DocRoot: map[string]string{
			"/data.html":             "data",
			"/forbidden-export.html": "export-controlled",
		},
		Users: map[string]string{"alice": "pw", "bob": "pw"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	do := func(target, user, pass, ip string) int {
		req := httptest.NewRequest("GET", target, nil)
		req.RemoteAddr = ip + ":1"
		req.SetBasicAuth(user, pass)
		w := httptest.NewRecorder()
		st.Server.ServeHTTP(w, req)
		return w.Code
	}

	// Alice works normally.
	if code := do("/data.html", "alice", "pw", "10.0.0.1"); code != http.StatusOK {
		t.Fatalf("normal access = %d", code)
	}
	// Alice trips the abuse signature: denied and account disabled.
	if code := do("/forbidden-export.html", "alice", "pw", "10.0.0.1"); code != http.StatusForbidden {
		t.Fatalf("abuse request = %d, want 403", code)
	}
	if !st.Groups.Contains("DisabledAccounts", "alice") {
		t.Fatal("account not disabled")
	}
	if st.Mailbox.Count() != 1 {
		t.Errorf("notifications = %d, want 1", st.Mailbox.Count())
	}
	// The disabled account is refused everywhere — even from a new
	// address (identity-keyed, unlike the BadGuys IP blacklist).
	if code := do("/data.html", "alice", "pw", "172.16.9.9"); code != http.StatusForbidden {
		t.Errorf("disabled account from new address = %d, want 403", code)
	}
	// Other users are unaffected.
	if code := do("/data.html", "bob", "pw", "10.0.0.1"); code != http.StatusOK {
		t.Errorf("unaffected user = %d, want 200", code)
	}
}
