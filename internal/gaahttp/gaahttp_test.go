package gaahttp

import (
	"encoding/base64"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gaaapi/internal/gaa"
	"gaaapi/internal/httpd"
	"gaaapi/internal/ids"
)

// policy71System / policy71Local are the paper's section 7.1 policies.
const (
	policy71System = `
eacl_mode narrow
neg_access_right * *
pre_cond_system_threat_level local =high
`
	policy71Local = `
pos_access_right apache *
pre_cond_system_threat_level local >low
pre_cond_accessid_USER apache *
`
)

// policy72Local is the paper's section 7.2 local policy (the BadGuys
// system policy is policy72System).
const (
	policy72System = `
eacl_mode narrow
neg_access_right * *
pre_cond_accessid_GROUP local BadGuys
`
	policy72Local = `
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi* *///////////////////* *%c0%af* *%255c*
rr_cond_notify local on:failure/sysadmin/info:cgiexploit
rr_cond_update_log local on:failure/BadGuys/info:IP
neg_access_right apache *
pre_cond_expr local input_length>1000
rr_cond_notify local on:failure/sysadmin/info:overflow
rr_cond_update_log local on:failure/BadGuys/info:IP
pos_access_right apache *
`
)

func lockdownStack(t *testing.T) *Stack {
	t.Helper()
	st, err := NewStack(StackConfig{
		SystemPolicy: policy71System,
		LocalPolicies: map[string]string{
			"*": policy71Local,
		},
		DocRoot: map[string]string{
			"/public/index.html": "public content",
			"/index.html":        "home",
		},
		Htaccess: map[string]string{
			// Native mixed access: /public open, /private needs auth.
			"private": "Require valid-user\n",
		},
		Users: map[string]string{"alice": "wonderland"},
	})
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}
	return st
}

func get(t *testing.T, s *httpd.Server, target, user, pass string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", target, nil)
	req.RemoteAddr = "10.1.2.3:40000"
	if user != "" {
		tok := base64.StdEncoding.EncodeToString([]byte(user + ":" + pass))
		req.Header.Set("Authorization", "Basic "+tok)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// TestPaperSection71NetworkLockdown drives the lockdown scenario over
// HTTP at each threat level.
func TestPaperSection71NetworkLockdown(t *testing.T) {
	st := lockdownStack(t)
	defer st.Close()

	// Threat LOW: the GAA policy has no applicable entry -> DECLINED ->
	// native mixed access applies.
	st.Threat.Set(ids.Low)
	if w := get(t, st.Server, "/public/index.html", "", ""); w.Code != http.StatusOK {
		t.Errorf("low/public/anon = %d, want 200", w.Code)
	}
	if w := get(t, st.Server, "/index.html", "", ""); w.Code != http.StatusOK {
		t.Errorf("low/home/anon = %d, want 200 (no htaccess)", w.Code)
	}

	// Threat MEDIUM: lockdown — every access requires authentication.
	st.Threat.Set(ids.Medium)
	w := get(t, st.Server, "/public/index.html", "", "")
	if w.Code != http.StatusUnauthorized {
		t.Errorf("medium/public/anon = %d, want 401", w.Code)
	}
	if got := w.Header().Get("WWW-Authenticate"); got == "" {
		t.Error("medium/anon: missing WWW-Authenticate challenge")
	}
	if w := get(t, st.Server, "/public/index.html", "alice", "wonderland"); w.Code != http.StatusOK {
		t.Errorf("medium/public/auth = %d, want 200", w.Code)
	}
	if w := get(t, st.Server, "/public/index.html", "alice", "wrongpw"); w.Code != http.StatusUnauthorized {
		t.Errorf("medium/public/badpw = %d, want 401", w.Code)
	}

	// Threat HIGH: the mandatory system-wide policy denies everyone.
	st.Threat.Set(ids.High)
	if w := get(t, st.Server, "/public/index.html", "alice", "wonderland"); w.Code != http.StatusForbidden {
		t.Errorf("high/auth = %d, want 403 (lockdown is mandatory)", w.Code)
	}
	if w := get(t, st.Server, "/public/index.html", "", ""); w.Code != http.StatusForbidden {
		t.Errorf("high/anon = %d, want 403", w.Code)
	}
}

func cgiStack(t *testing.T) *Stack {
	t.Helper()
	st, err := NewStack(StackConfig{
		SystemPolicy: policy72System,
		LocalPolicies: map[string]string{
			"*": policy72Local,
		},
		DocRoot:          map[string]string{"/index.html": "home"},
		SensitiveObjects: []string{"/cgi-bin/*"},
	})
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}
	return st
}

// TestPaperSection72CGIProtection drives the CGI-abuse scenario over
// HTTP: detection, response, blacklist propagation.
func TestPaperSection72CGIProtection(t *testing.T) {
	st := cgiStack(t)
	defer st.Close()

	// The phf exploit is blocked before execution.
	w := get(t, st.Server, "/cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd", "", "")
	if w.Code != http.StatusForbidden {
		t.Fatalf("phf = %d, want 403", w.Code)
	}
	if strings.Contains(w.Body.String(), "root:x:") {
		t.Fatal("exploit output leaked despite denial")
	}
	if st.Mailbox.Count() != 1 {
		t.Errorf("notifications = %d, want 1", st.Mailbox.Count())
	}
	if !st.Groups.Contains("BadGuys", "10.1.2.3") {
		t.Error("attacker not blacklisted")
	}

	// Follow-up with an unknown signature from the same host: denied by
	// the system-wide blacklist.
	if w := get(t, st.Server, "/cgi-bin/search?q=zero-day", "", ""); w.Code != http.StatusForbidden {
		t.Errorf("blacklisted follow-up = %d, want 403", w.Code)
	}

	// Legitimate traffic from clean clients flows.
	req := httptest.NewRequest("GET", "/cgi-bin/search?q=hello", nil)
	req.RemoteAddr = "10.9.9.9:1234"
	rec := httptest.NewRecorder()
	st.Server.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("clean client = %d, want 200", rec.Code)
	}
}

func TestSection72AttackClasses(t *testing.T) {
	tests := []struct {
		name   string
		target string
	}{
		{"phf", "/cgi-bin/phf?Qalias=x"},
		{"test-cgi", "/cgi-bin/test-cgi?*"},
		{"slash flood", "/cgi-bin/search" + strings.Repeat("/", 30)},
		{"nimda traversal", "/cgi-bin/..%c0%af..%c0%afwinnt?cmd"},
		{"buffer overflow", "/cgi-bin/search?q=" + strings.Repeat("A", 1200)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			st := cgiStack(t)
			defer st.Close()
			if w := get(t, st.Server, tt.target, "", ""); w.Code != http.StatusForbidden {
				t.Errorf("%s = %d, want 403", tt.target, w.Code)
			}
			if st.Groups.Len("BadGuys") != 1 {
				t.Errorf("blacklist size = %d, want 1", st.Groups.Len("BadGuys"))
			}
		})
	}
}

// TestAdaptiveRedirect reproduces the paper's section 6 MAYBE handling:
// a pre_cond_redirect left unevaluated becomes HTTP_MOVED.
func TestAdaptiveRedirect(t *testing.T) {
	st, err := NewStack(StackConfig{
		LocalPolicies: map[string]string{
			"/mirror/*": `
pos_access_right apache *
pre_cond_location local 10.0.0.0/8
pre_cond_redirect local http://mirror-west.example.org/
`,
		},
		DocRoot: map[string]string{"/mirror/data.html": "data"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	w := get(t, st.Server, "/mirror/data.html", "", "")
	if w.Code != http.StatusFound {
		t.Fatalf("redirect policy = %d, want 302", w.Code)
	}
	if got := w.Header().Get("Location"); got != "http://mirror-west.example.org/" {
		t.Errorf("Location = %q", got)
	}

	// A client outside the selector's range falls through to DECLINED
	// (default allow, no htaccess).
	req := httptest.NewRequest("GET", "/mirror/data.html", nil)
	req.RemoteAddr = "99.1.1.1:5"
	rec := httptest.NewRecorder()
	st.Server.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("outside selector = %d, want 200", rec.Code)
	}
}

// TestExecutionControlThroughStack wires a mid-condition quota through
// the whole stack: a runaway CGI is aborted.
func TestExecutionControlThroughStack(t *testing.T) {
	st, err := NewStack(StackConfig{
		LocalPolicies: map[string]string{
			"*": `
pos_access_right apache *
mid_cond_quota local cpu_ms<=50
`,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	w := get(t, st.Server, "/cgi-bin/spin", "", "")
	if w.Code != http.StatusInternalServerError {
		t.Errorf("runaway = %d, want 500 (aborted by mid-condition)", w.Code)
	}
	// A cheap script is unaffected.
	if w := get(t, st.Server, "/cgi-bin/search?q=x", "", ""); w.Code != http.StatusOK {
		t.Errorf("cheap script = %d, want 200", w.Code)
	}
}

// TestPostConditionsThroughStack: a post_cond_audit record appears
// after the operation completes, tagged with the operation status.
func TestPostConditionsThroughStack(t *testing.T) {
	st, err := NewStack(StackConfig{
		LocalPolicies: map[string]string{
			"*": `
pos_access_right apache *
post_cond_audit local on:any/info:op-finished
`,
		},
		DocRoot: map[string]string{"/index.html": "home"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	get(t, st.Server, "/index.html", "", "")
	var found bool
	for _, r := range st.Audit.Records() {
		if r.Kind == "post_execution" && r.Info == "op-finished" {
			found = true
		}
	}
	if !found {
		t.Errorf("no post-execution audit record; records = %+v", st.Audit.Records())
	}
}

// TestIDSReporting verifies the section 3 report classes reach the bus
// and the correlator escalates the threat level, which in turn locks
// the system down (the full feedback loop).
func TestIDSFeedbackLoop(t *testing.T) {
	st, err := NewStack(StackConfig{
		SystemPolicy: policy71System, // deny all at high threat
		LocalPolicies: map[string]string{
			"*": policy72Local, // signature detection
		},
		DocRoot: map[string]string{"/index.html": "home"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	sub := st.Bus.Subscribe(16)
	defer sub.Cancel()
	correlator := ids.NewCorrelator(st.Threat, ids.DefaultCorrelatorConfig())

	// One high-severity attack...
	w := get(t, st.Server, "/cgi-bin/phf?Qalias=x", "", "")
	if w.Code != http.StatusForbidden {
		t.Fatalf("attack = %d, want 403", w.Code)
	}
	var sawAttack bool
	for len(sub.C) > 0 {
		r := <-sub.C
		correlator.Observe(r)
		if r.Kind == ids.DetectedAttack && r.Signature == "phf" {
			sawAttack = true
		}
	}
	if !sawAttack {
		t.Fatal("no detected_attack report on the bus")
	}
	if st.Threat.Level() != ids.High {
		t.Fatalf("threat level = %v, want high after attack", st.Threat.Level())
	}
	// ...and now the mandatory lockdown denies even clean requests.
	req := httptest.NewRequest("GET", "/index.html", nil)
	req.RemoteAddr = "10.9.9.9:1"
	rec := httptest.NewRecorder()
	st.Server.ServeHTTP(rec, req)
	if rec.Code != http.StatusForbidden {
		t.Errorf("clean request at high threat = %d, want 403", rec.Code)
	}
}

func TestReportKindsPublished(t *testing.T) {
	st := cgiStack(t)
	defer st.Close()
	sub := st.Bus.Subscribe(64)
	defer sub.Cancel()

	// Legitimate request -> legitimate_pattern.
	req := httptest.NewRequest("GET", "/index.html", nil)
	req.RemoteAddr = "10.9.9.9:1"
	st.Server.ServeHTTP(httptest.NewRecorder(), req)

	// Oversized input -> abnormal_parameters (plus the deny reports).
	get(t, st.Server, "/cgi-bin/search?q="+strings.Repeat("B", 1500), "", "")

	// Sensitive-object denial -> sensitive_access_denial.
	get(t, st.Server, "/cgi-bin/phf?x", "", "")

	kinds := make(map[ids.ReportKind]int)
	for len(sub.C) > 0 {
		kinds[(<-sub.C).Kind]++
	}
	for _, want := range []ids.ReportKind{
		ids.LegitimatePattern, ids.AbnormalParameters,
		ids.SensitiveAccessDenial, ids.DetectedAttack,
	} {
		if kinds[want] == 0 {
			t.Errorf("no %v report published; got %v", want, kinds)
		}
	}
}

func TestTranslate(t *testing.T) {
	tests := []struct {
		name string
		ans  *gaa.Answer
		want httpd.StatusKind
	}{
		{"yes", &gaa.Answer{Decision: gaa.Yes}, httpd.StatusOK},
		{"no", &gaa.Answer{Decision: gaa.No}, httpd.StatusForbidden},
		{"no with challenge", &gaa.Answer{Decision: gaa.No, Challenge: "Basic"}, httpd.StatusAuthRequired},
		{"maybe", &gaa.Answer{Decision: gaa.Maybe}, httpd.StatusDeclined},
	}
	for _, tt := range tests {
		if got := translate(tt.ans); got.Kind != tt.want {
			t.Errorf("%s: translate = %v, want %v", tt.name, got.Kind, tt.want)
		}
	}
}

func TestExtractParams(t *testing.T) {
	req := httptest.NewRequest("GET", "/cgi-bin/phf?a=b", nil)
	req.RemoteAddr = "1.2.3.4:55"
	rec := httpd.NewRequestRec(req, nil, time.Now())
	ps := ExtractParams(rec)
	checks := map[string]string{
		gaa.ParamClientIP:   "1.2.3.4",
		gaa.ParamMethod:     "GET",
		gaa.ParamPath:       "/cgi-bin/phf",
		gaa.ParamQuery:      "a=b",
		gaa.ParamObject:     "/cgi-bin/phf",
		gaa.ParamRequestURI: "GET /cgi-bin/phf?a=b",
	}
	for typ, want := range checks {
		if got, ok := ps.Get(typ, gaa.AuthorityAny); !ok || got != want {
			t.Errorf("param %s = %q (%v), want %q", typ, got, ok, want)
		}
	}
	if _, ok := ps.Get(gaa.ParamUser, gaa.AuthorityAny); ok {
		t.Error("anonymous request should not carry a user param")
	}
}

func TestIllFormedDetection(t *testing.T) {
	g := New(Config{API: gaa.New()})
	base := &httpd.RequestRec{URI: "GET /index.html", HeaderCount: 3}
	if g.illFormed(base) {
		t.Error("normal request flagged ill-formed")
	}
	many := &httpd.RequestRec{URI: "GET /", HeaderCount: 500}
	if !g.illFormed(many) {
		t.Error("excessive headers not flagged")
	}
	ctrl := &httpd.RequestRec{URI: "GET /\x01evil", HeaderCount: 1}
	if !g.illFormed(ctrl) {
		t.Error("control characters not flagged")
	}
	backslash := &httpd.RequestRec{URI: `GET /..\..\cmd`, HeaderCount: 1}
	if !g.illFormed(backslash) {
		t.Error("backslash traversal not flagged")
	}
}

func TestStackConfigErrors(t *testing.T) {
	if _, err := NewStack(StackConfig{SystemPolicy: "pre_cond_x y"}); err == nil {
		t.Error("want error for bad system policy")
	}
	if _, err := NewStack(StackConfig{LocalPolicies: map[string]string{"*": "bogus"}}); err == nil {
		t.Error("want error for bad local policy")
	}
	if _, err := NewStack(StackConfig{Htaccess: map[string]string{"": "Bogus x"}}); err == nil {
		t.Error("want error for bad htaccess")
	}
}

func TestAnomalyTrainingThroughGuard(t *testing.T) {
	st, err := NewStack(StackConfig{
		LocalPolicies: map[string]string{"*": "pos_access_right apache *"},
		DocRoot:       map[string]string{"/index.html": "home"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 5; i++ {
		req := httptest.NewRequest("GET", "/index.html", nil)
		req.RemoteAddr = "10.4.4.4:1"
		st.Server.ServeHTTP(httptest.NewRecorder(), req)
	}
	if n := st.Anomaly.Trained("10.4.4.4"); n != 5 {
		t.Errorf("trained observations = %d, want 5", n)
	}
}
