package actions

import (
	"context"
	"testing"
	"time"

	"gaaapi/internal/audit"
	"gaaapi/internal/conditions"
	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/groups"
	"gaaapi/internal/ids"
	"gaaapi/internal/netblock"
	"gaaapi/internal/notify"
)

// harness wires an API with both condition and action evaluators and
// inspectable substrate state.
type harness struct {
	api      *gaa.API
	mailbox  *notify.Mailbox
	groups   *groups.Store
	ring     *audit.Ring
	threat   *ids.Manager
	blocks   *netblock.Set
	counters *conditions.Counters
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	h := &harness{
		mailbox:  notify.NewMailbox(0),
		groups:   groups.NewStore(),
		ring:     audit.NewRing(64),
		threat:   ids.NewManager(ids.Low),
		blocks:   netblock.NewSet(),
		counters: conditions.NewCounters(nil),
	}
	h.api = gaa.New()
	conditions.Register(h.api, conditions.Deps{
		Threat:   h.threat,
		Groups:   h.groups,
		Counters: h.counters,
	})
	Register(h.api, Deps{
		Notifier: h.mailbox,
		Groups:   h.groups,
		Audit:    h.ring,
		Threat:   h.threat,
		Blocks:   h.blocks,
		Counters: h.counters,
	})
	return h
}

func (h *harness) check(t *testing.T, policySrc string, params ...gaa.Param) *gaa.Answer {
	t.Helper()
	e, err := eacl.ParseString(policySrc)
	if err != nil {
		t.Fatalf("parse policy: %v", err)
	}
	p := gaa.NewPolicy("/x", nil, []*eacl.EACL{e})
	req := gaa.NewRequest("apache", "GET /x", params...)
	ans, err := h.api.CheckAuthorization(context.Background(), p, req)
	if err != nil {
		t.Fatalf("CheckAuthorization: %v", err)
	}
	return ans
}

func params(ip, uri string) []gaa.Param {
	return []gaa.Param{
		{Type: gaa.ParamClientIP, Authority: gaa.AuthorityAny, Value: ip},
		{Type: gaa.ParamRequestURI, Authority: gaa.AuthorityAny, Value: uri},
	}
}

// TestPaperSection72Scenario runs the paper's CGI-abuse policy
// end-to-end: a phf request is denied, the administrator is notified,
// and the attacker's address joins the BadGuys blacklist so follow-up
// requests with unknown signatures are blocked too.
func TestPaperSection72Scenario(t *testing.T) {
	h := newHarness(t)
	const local = `
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi*
rr_cond_notify local on:failure/sysadmin/info:cgiexploit
rr_cond_update_log local on:failure/BadGuys/info:IP
pos_access_right apache *
`
	const system = `
eacl_mode narrow
neg_access_right * *
pre_cond_accessid_GROUP local BadGuys
`
	sysE, err := eacl.ParseString(system)
	if err != nil {
		t.Fatal(err)
	}
	locE, err := eacl.ParseString(local)
	if err != nil {
		t.Fatal(err)
	}
	policy := gaa.NewPolicy("/cgi-bin/phf", []*eacl.EACL{sysE}, []*eacl.EACL{locE})

	attack := gaa.NewRequest("apache", "GET /cgi-bin/phf", params("10.0.0.66", "GET /cgi-bin/phf?Q=/etc/passwd")...)
	ans, err := h.api.CheckAuthorization(context.Background(), policy, attack)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Decision != gaa.No {
		t.Fatalf("phf attack decision = %v, want no", ans.Decision)
	}
	if h.mailbox.Count() != 1 {
		t.Errorf("notifications = %d, want 1", h.mailbox.Count())
	} else if msg := h.mailbox.Messages()[0]; msg.Tag != "cgiexploit" || msg.To != "sysadmin" {
		t.Errorf("notification = %+v", msg)
	}
	if !h.groups.Contains("BadGuys", "10.0.0.66") {
		t.Error("attacker not added to BadGuys")
	}

	// Follow-up probe from the same host with an unknown signature is
	// blocked by the system-wide blacklist (paper: "subsequent requests
	// from that host ... can still be blocked").
	followup := gaa.NewRequest("apache", "GET /cgi-bin/unknown-probe",
		params("10.0.0.66", "GET /cgi-bin/unknown-probe")...)
	ans2, err := h.api.CheckAuthorization(context.Background(), policy, followup)
	if err != nil {
		t.Fatal(err)
	}
	if ans2.Decision != gaa.No {
		t.Errorf("follow-up decision = %v, want no (blacklisted)", ans2.Decision)
	}

	// A clean client is unaffected.
	clean := gaa.NewRequest("apache", "GET /index.html", params("10.0.0.1", "GET /index.html")...)
	ans3, err := h.api.CheckAuthorization(context.Background(), policy, clean)
	if err != nil {
		t.Fatal(err)
	}
	if ans3.Decision != gaa.Yes {
		t.Errorf("clean request decision = %v, want yes", ans3.Decision)
	}
	if h.mailbox.Count() != 1 {
		t.Errorf("notifications after clean request = %d, want still 1", h.mailbox.Count())
	}
}

func TestNotifyTriggerFiltering(t *testing.T) {
	h := newHarness(t)
	// Granted request: on:failure notify must not fire.
	h.check(t, "pos_access_right apache *\nrr_cond_notify local on:failure/sysadmin/info:x\n",
		params("1.2.3.4", "GET /")...)
	if h.mailbox.Count() != 0 {
		t.Errorf("on:failure fired on success: %d messages", h.mailbox.Count())
	}
	// on:success fires.
	h.check(t, "pos_access_right apache *\nrr_cond_notify local on:success/ops/info:ok\n",
		params("1.2.3.4", "GET /")...)
	if h.mailbox.Count() != 1 {
		t.Errorf("on:success messages = %d, want 1", h.mailbox.Count())
	}
	// on:any fires regardless.
	h.check(t, "neg_access_right apache *\nrr_cond_notify local on:any/ops/info:always\n",
		params("1.2.3.4", "GET /")...)
	if h.mailbox.Count() != 2 {
		t.Errorf("on:any messages = %d, want 2", h.mailbox.Count())
	}
	// Default recipient when omitted.
	h.check(t, "pos_access_right apache *\nrr_cond_notify local on:success/info:tagonly\n")
	msgs := h.mailbox.Messages()
	if msgs[len(msgs)-1].To != "sysadmin" {
		t.Errorf("default recipient = %q, want sysadmin", msgs[len(msgs)-1].To)
	}
	// Bad trigger is unevaluable.
	ans := h.check(t, "pos_access_right apache *\nrr_cond_notify local on:sometimes/x\n")
	if ans.Decision != gaa.Maybe {
		t.Errorf("bad trigger decision = %v, want maybe", ans.Decision)
	}
}

func TestUpdateLogUserKey(t *testing.T) {
	h := newHarness(t)
	h.check(t, "neg_access_right apache *\nrr_cond_update_log local on:failure/Suspects/info:USER\n",
		gaa.Param{Type: gaa.ParamUser, Authority: gaa.AuthorityAny, Value: "mallory"})
	if !h.groups.Contains("Suspects", "mallory") {
		t.Error("user identity not recorded in group")
	}
	// Missing group name is unevaluable; the denial itself stands
	// (Conjoin(No, Maybe) = No) and no group is touched.
	ans := h.check(t, "neg_access_right apache *\nrr_cond_update_log local on:failure/info:IP\n",
		params("9.9.9.9", "GET /")...)
	if ans.Decision != gaa.No {
		t.Errorf("missing group decision = %v, want no (denial preserved)", ans.Decision)
	}
	if len(h.groups.Groups()) != 1 { // only Suspects from above
		t.Errorf("groups = %v, want no new group", h.groups.Groups())
	}
	// Missing parameter is unevaluable; nothing is recorded.
	h.check(t, "neg_access_right apache *\nrr_cond_update_log local on:failure/G/info:IP\n")
	if h.groups.Len("G") != 0 {
		t.Errorf("group G = %v, want empty", h.groups.Members("G"))
	}
}

func TestAuditAction(t *testing.T) {
	h := newHarness(t)
	h.check(t, "neg_access_right apache *\nrr_cond_audit local on:any/info:probe\n",
		append(params("10.0.0.5", "GET /secret"),
			gaa.Param{Type: gaa.ParamObject, Authority: gaa.AuthorityAny, Value: "/secret"},
			gaa.Param{Type: gaa.ParamUser, Authority: gaa.AuthorityAny, Value: "eve"})...)
	recs := h.ring.Records()
	if len(recs) != 1 {
		t.Fatalf("audit records = %d, want 1", len(recs))
	}
	r := recs[0]
	if r.Decision != "no" || r.ClientIP != "10.0.0.5" || r.User != "eve" ||
		r.Info != "probe" || r.Object != "/secret" || r.Kind != "authorization" {
		t.Errorf("record = %+v", r)
	}
	if r.Right == "" {
		t.Error("record missing requested right")
	}
}

func TestSetThreatLevelAction(t *testing.T) {
	h := newHarness(t)
	h.check(t, "neg_access_right apache *\nrr_cond_set_threat_level local on:failure/high\n")
	if h.threat.Level() != ids.High {
		t.Errorf("threat level = %v, want high", h.threat.Level())
	}
	// Escalate never lowers.
	h.check(t, "neg_access_right apache *\nrr_cond_set_threat_level local on:failure/low\n")
	if h.threat.Level() != ids.High {
		t.Errorf("threat level = %v, want still high", h.threat.Level())
	}
	// Unknown or missing levels are unevaluable: the denial stands and
	// the level is untouched. Verify via a fresh harness at Low.
	h2 := newHarness(t)
	h2.check(t, "neg_access_right apache *\nrr_cond_set_threat_level local on:failure/extreme\n")
	h2.check(t, "neg_access_right apache *\nrr_cond_set_threat_level local on:failure\n")
	if h2.threat.Level() != ids.Low {
		t.Errorf("threat level = %v, want untouched low", h2.threat.Level())
	}
}

func TestBlockIPAction(t *testing.T) {
	h := newHarness(t)
	h.check(t, "neg_access_right apache *\nrr_cond_block_ip local on:failure/duration:10m\n",
		params("10.0.0.99", "GET /evil")...)
	if !h.blocks.Blocked("10.0.0.99") {
		t.Error("client not blocked")
	}
	// Permanent block without duration.
	h.check(t, "neg_access_right apache *\nrr_cond_block_ip local on:failure\n",
		params("10.0.0.100", "GET /evil")...)
	if !h.blocks.Blocked("10.0.0.100") {
		t.Error("client not permanently blocked")
	}
	// Bad duration is unevaluable: no block is installed.
	h.check(t, "neg_access_right apache *\nrr_cond_block_ip local on:failure/duration:soon\n",
		params("10.0.0.101", "GET /")...)
	if h.blocks.Blocked("10.0.0.101") {
		t.Error("client blocked despite malformed duration")
	}
}

// TestFailedLoginLockout pairs rr_cond_count with pre_cond_threshold:
// after three failed logins within the window the client is denied even
// with correct credentials — the paper's password-guessing defence.
func TestFailedLoginLockout(t *testing.T) {
	h := newHarness(t)
	const policy = `
neg_access_right sshd login
pre_cond_threshold local counter=failed_login key=client_ip max=3 window=60s
pos_access_right sshd login
pre_cond_accessid_USER sshd *
rr_cond_count local on:failure/failed_login
`
	e, err := eacl.ParseString(policy)
	if err != nil {
		t.Fatal(err)
	}
	p := gaa.NewPolicy("login", nil, []*eacl.EACL{e})
	attempt := func(user string) gaa.Decision {
		t.Helper()
		ps := []gaa.Param{{Type: gaa.ParamClientIP, Authority: gaa.AuthorityAny, Value: "10.0.0.7"}}
		if user != "" {
			ps = append(ps, gaa.Param{Type: gaa.ParamUser, Authority: gaa.AuthorityAny, Value: user})
		}
		req := gaa.NewRequest("sshd", "login", ps...)
		ans, err := h.api.CheckAuthorization(context.Background(), p, req)
		if err != nil {
			t.Fatal(err)
		}
		return ans.Decision
	}

	// Three failed (unauthenticated) attempts.
	for i := 0; i < 3; i++ {
		if got := attempt(""); got != gaa.No {
			t.Fatalf("failed attempt %d decision = %v, want no", i, got)
		}
	}
	// Now even a valid login is locked out by the threshold entry.
	if got := attempt("alice"); got != gaa.No {
		t.Errorf("post-lockout valid login = %v, want no", got)
	}
}

func TestCountActionKeyOverride(t *testing.T) {
	h := newHarness(t)
	h.check(t, "neg_access_right apache *\nrr_cond_count local on:failure/bad_user/key:accessid_USER\n",
		gaa.Param{Type: gaa.ParamUser, Authority: gaa.AuthorityAny, Value: "mallory"})
	if n := h.counters.CountSince(conditions.CounterKey("bad_user", "mallory"), time.Minute); n != 1 {
		t.Errorf("count = %d, want 1", n)
	}
	// Missing counter name is unevaluable: nothing recorded.
	h.check(t, "neg_access_right apache *\nrr_cond_count local on:failure\n",
		params("1.1.1.1", "GET /")...)
	if n := h.counters.CountSince(conditions.CounterKey("", "1.1.1.1"), time.Minute); n != 0 {
		t.Errorf("phantom count = %d", n)
	}
}

func TestActionsUnconfiguredAreMaybe(t *testing.T) {
	api := gaa.New()
	Register(api, Deps{})
	for _, line := range []string{
		"rr_cond_notify local on:any/x/info:t",
		"rr_cond_update_log local on:any/G/info:IP",
		"rr_cond_audit local on:any/info:t",
		"rr_cond_set_threat_level local on:any/high",
		"rr_cond_block_ip local on:any",
		"rr_cond_count local on:any/c",
	} {
		e, err := eacl.ParseString("pos_access_right apache *\n" + line + "\n")
		if err != nil {
			t.Fatal(err)
		}
		p := gaa.NewPolicy("/x", nil, []*eacl.EACL{e})
		ans, err := api.CheckAuthorization(context.Background(), p, gaa.NewRequest("apache", "GET /x"))
		if err != nil {
			t.Fatal(err)
		}
		if ans.Decision != gaa.Maybe {
			t.Errorf("%q with nil deps: %v, want maybe", line, ans.Decision)
		}
	}
}

func TestPostConditionTriggersOnOperationStatus(t *testing.T) {
	h := newHarness(t)
	e, err := eacl.ParseString(`
pos_access_right apache *
post_cond_notify local on:failure/sysadmin/info:opfailed
`)
	if err != nil {
		t.Fatal(err)
	}
	p := gaa.NewPolicy("/x", nil, []*eacl.EACL{e})
	req := gaa.NewRequest("apache", "GET /x", params("1.2.3.4", "GET /x")...)
	ans, err := h.api.CheckAuthorization(context.Background(), p, req)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Decision != gaa.Yes {
		t.Fatalf("decision = %v, want yes", ans.Decision)
	}
	// Operation succeeded: on:failure post-condition stays quiet.
	if dec, _ := h.api.PostExecutionActions(context.Background(), ans, req, gaa.Yes); dec != gaa.Yes {
		t.Errorf("post decision = %v", dec)
	}
	if h.mailbox.Count() != 0 {
		t.Errorf("messages after successful op = %d, want 0", h.mailbox.Count())
	}
	// Operation failed: it fires, even though the REQUEST was granted.
	if dec, _ := h.api.PostExecutionActions(context.Background(), ans, req, gaa.No); dec != gaa.Yes {
		t.Errorf("post decision = %v", dec)
	}
	if h.mailbox.Count() != 1 {
		t.Errorf("messages after failed op = %d, want 1", h.mailbox.Count())
	}
}

func TestParseValueDefaultsToAny(t *testing.T) {
	trig, args, err := parseValue("justarg/info:x")
	if err != nil || trig != onAny {
		t.Errorf("parseValue = %v, %v, %v", trig, args, err)
	}
	if len(args) != 2 {
		t.Errorf("args = %v", args)
	}
	// Empty segments dropped.
	_, args, err = parseValue("on:any//x/")
	if err != nil || len(args) != 1 || args[0] != "x" {
		t.Errorf("args = %v, err=%v", args, err)
	}
}
