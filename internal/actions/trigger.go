// Package actions provides the side-effecting GAA-API condition
// evaluators used in request-result and post-condition blocks: email
// notification, audit records, dynamic blacklist updates, threat-level
// escalation, firewall blocks and threshold counters. Values follow the
// paper's trigger syntax:
//
//	rr_cond_notify     local on:failure/sysadmin/info:cgiexploit
//	rr_cond_update_log local on:failure/BadGuys/info:IP
//
// "on:failure" fires when the authorization request was denied (or, in
// a post-condition block, when the operation failed); "on:success" when
// it was granted (succeeded); "on:any" always (paper section 5: the
// routines "can be activated whether the request succeeds/fails ... or
// whether the requested operation succeeds/fails").
package actions

import (
	"fmt"
	"strings"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
)

// trigger is the on: filter of an action condition.
type trigger int

const (
	onAny trigger = iota + 1
	onSuccess
	onFailure
)

// parseValue splits an action value "on:failure/arg1/arg2" into the
// trigger and the remaining slash-separated arguments. A value without
// an on: prefix defaults to on:any.
func parseValue(value string) (trigger, []string, error) {
	parts := strings.Split(value, "/")
	trig := onAny
	if len(parts) > 0 && strings.HasPrefix(parts[0], "on:") {
		switch strings.TrimPrefix(parts[0], "on:") {
		case "any":
			trig = onAny
		case "success":
			trig = onSuccess
		case "failure":
			trig = onFailure
		default:
			return 0, nil, fmt.Errorf("unknown trigger %q", parts[0])
		}
		parts = parts[1:]
	}
	// Drop empty segments from values like "on:any/".
	args := parts[:0]
	for _, p := range parts {
		if p != "" {
			args = append(args, p)
		}
	}
	return trig, args, nil
}

// fires reports whether the trigger matches the phase status: the
// authorization decision for request-result conditions, the operation
// status for post-conditions.
func (t trigger) fires(cond eacl.Condition, req *gaa.Request) bool {
	status := req.Decision
	if cond.Block == eacl.BlockPost {
		status = req.OpStatus
	}
	switch t {
	case onSuccess:
		return status == gaa.Yes
	case onFailure:
		// MAYBE (uncertain) is neither a grant nor a denial: it fires
		// neither on:success nor on:failure.
		return status == gaa.No
	default:
		return true
	}
}

// skipped is the outcome of an action whose trigger did not match.
func skipped() gaa.Outcome {
	return gaa.MetOutcome(gaa.ClassAction, "trigger not matched")
}

// badValue is the outcome for a malformed action value: unevaluable,
// never a grant or deny.
func badValue(err error) gaa.Outcome {
	return gaa.Outcome{Result: gaa.Maybe, Unevaluated: true, Class: gaa.ClassAction, Err: err}
}

// infoTag extracts "info:<tag>" from the argument list, returning the
// tag and the remaining arguments.
func infoTag(args []string) (string, []string) {
	var (
		tag  string
		rest []string
	)
	for _, a := range args {
		if v, ok := strings.CutPrefix(a, "info:"); ok {
			tag = v
			continue
		}
		rest = append(rest, a)
	}
	return tag, rest
}
