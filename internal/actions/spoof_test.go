package actions

import (
	"context"
	"testing"

	"gaaapi/internal/conditions"
	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/groups"
	"gaaapi/internal/ids"
	"gaaapi/internal/netblock"
)

func mustParseEACL(t *testing.T, src string) []*eacl.EACL {
	t.Helper()
	e, err := eacl.ParseString(src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return []*eacl.EACL{e}
}

// spoofHarness wires actions with a network IDS reporting 203.0.113.*
// as spoofed.
func spoofHarness(t *testing.T) (*gaa.API, *groups.Store, *netblock.Set) {
	t.Helper()
	grp := groups.NewStore()
	blocks := netblock.NewSet()
	api := gaa.New()
	conditions.Register(api, conditions.Deps{Groups: grp})
	Register(api, Deps{
		Groups: grp,
		Blocks: blocks,
		Spoof:  ids.NewStaticSpoofList(0.9, "203.0.113.*"),
	})
	return api, grp, blocks
}

func checkWith(t *testing.T, api *gaa.API, policy, ip string) *gaa.Answer {
	t.Helper()
	p := gaa.NewPolicy("/x", nil, mustParseEACL(t, policy))
	req := gaa.NewRequest("apache", "GET /x",
		gaa.Param{Type: gaa.ParamClientIP, Authority: gaa.AuthorityAny, Value: ip})
	ans, err := api.CheckAuthorization(context.Background(), p, req)
	if err != nil {
		t.Fatalf("CheckAuthorization: %v", err)
	}
	return ans
}

// TestSpoofedSourceNotBlacklisted: the paper's anti-DoS safeguard — an
// attacker must not be able to get an impersonated host blacklisted
// (sections 1 and 3).
func TestSpoofedSourceNotBlacklisted(t *testing.T) {
	api, grp, _ := spoofHarness(t)
	const policy = `
neg_access_right apache *
rr_cond_update_log local on:failure/BadGuys/info:IP
`
	// Spoof-suspected source: denied, but never blacklisted.
	ans := checkWith(t, api, policy, "203.0.113.9")
	if ans.Decision != gaa.No {
		t.Fatalf("decision = %v, want no", ans.Decision)
	}
	if grp.Contains("BadGuys", "203.0.113.9") {
		t.Error("spoof-suspected source was blacklisted")
	}
	// Genuine source: blacklisted as usual.
	checkWith(t, api, policy, "10.0.0.66")
	if !grp.Contains("BadGuys", "10.0.0.66") {
		t.Error("genuine source not blacklisted")
	}
}

func TestSpoofedSourceNotFirewalled(t *testing.T) {
	api, _, blocks := spoofHarness(t)
	const policy = `
neg_access_right apache *
rr_cond_block_ip local on:failure/duration:10m
`
	checkWith(t, api, policy, "203.0.113.9")
	if blocks.Blocked("203.0.113.9") {
		t.Error("spoof-suspected source was firewalled")
	}
	checkWith(t, api, policy, "10.0.0.66")
	if !blocks.Blocked("10.0.0.66") {
		t.Error("genuine source not firewalled")
	}
}

// TestSpoofCheckDoesNotAffectUserKeyedUpdates: spoofing indications are
// about network addresses; user-keyed blacklist updates proceed.
func TestSpoofCheckDoesNotAffectUserKeyedUpdates(t *testing.T) {
	grp := groups.NewStore()
	api := gaa.New()
	Register(api, Deps{
		Groups: grp,
		Spoof:  ids.NewStaticSpoofList(0.9, "*"), // everything "spoofed"
	})
	e := mustParseEACL(t, `
neg_access_right apache *
rr_cond_update_log local on:failure/Suspects/info:USER
`)
	p := gaa.NewPolicy("/x", nil, e)
	req := gaa.NewRequest("apache", "GET /x",
		gaa.Param{Type: gaa.ParamUser, Authority: gaa.AuthorityAny, Value: "mallory"})
	if _, err := api.CheckAuthorization(context.Background(), p, req); err != nil {
		t.Fatal(err)
	}
	if !grp.Contains("Suspects", "mallory") {
		t.Error("user-keyed update suppressed by address spoof check")
	}
}
