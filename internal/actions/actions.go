package actions

import (
	"context"
	"fmt"
	"strings"
	"time"

	"gaaapi/internal/audit"
	"gaaapi/internal/conditions"
	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/groups"
	"gaaapi/internal/ids"
	"gaaapi/internal/netblock"
	"gaaapi/internal/notify"
	"gaaapi/internal/retry"
)

// Deps carries the services the action evaluators drive. Nil fields
// disable the corresponding actions (they evaluate to MAYBE, exactly
// like an unregistered routine).
type Deps struct {
	// Notifier delivers rr_cond_notify / post_cond_notify messages.
	Notifier notify.Notifier
	// Groups backs rr_cond_update_log blacklist appends.
	Groups *groups.Store
	// Audit receives rr_cond_audit / post_cond_audit records.
	Audit audit.Logger
	// Threat is escalated by rr_cond_set_threat_level.
	Threat *ids.Manager
	// Blocks receives rr_cond_block_ip firewall entries.
	Blocks *netblock.Set
	// Counters receives rr_cond_count events (paired with
	// pre_cond_threshold).
	Counters *conditions.Counters
	// Spoof, when non-nil, is consulted before source-keyed
	// countermeasures (update_log, block_ip): a spoof-suspected
	// address is never blacklisted or firewalled, so an attacker
	// cannot stage a denial of service by impersonating a host
	// (paper sections 1 and 3).
	Spoof ids.NetworkIDS
	// Retry bounds re-attempts of side-effecting deliveries (notify,
	// audit) when the backing service errors transiently. The zero
	// value means a single attempt (current behaviour). Deployments
	// whose Notifier is already a notify.Reliable should leave this
	// zero to avoid nested retries.
	Retry retry.Policy
}

// Builtin returns the built-in action evaluator registered under name.
// clock supplies timestamps for notifications and audit records (pass
// api.Now).
func Builtin(name string, deps Deps, clock func() time.Time) (gaa.Evaluator, bool) {
	switch name {
	case "notify":
		return notifyAction{n: deps.Notifier, clock: clock, retry: deps.Retry}, true
	case "update_log":
		return updateLogAction{store: deps.Groups, spoof: deps.Spoof}, true
	case "audit":
		return auditAction{log: deps.Audit, clock: clock, retry: deps.Retry}, true
	case "set_threat_level":
		return threatAction{mgr: deps.Threat}, true
	case "block_ip":
		return blockAction{set: deps.Blocks, spoof: deps.Spoof}, true
	case "count":
		return countAction{counters: deps.Counters}, true
	default:
		return nil, false
	}
}

// Names lists the built-in action evaluator names.
func Names() []string {
	return []string{"notify", "update_log", "audit", "set_threat_level", "block_ip", "count"}
}

// Register installs every action evaluator on api under the wildcard
// authority.
func Register(api *gaa.API, deps Deps) {
	for _, name := range Names() {
		ev, _ := Builtin(name, deps, api.Now)
		api.Register(name, gaa.AuthorityAny, ev)
	}
}

// notifyAction implements rr_cond_notify / post_cond_notify:
// "on:failure/sysadmin/info:cgiexploit" sends the recipient a message
// "reporting time, IP address, URL attempted and a threat type" (paper
// section 7.2).
type notifyAction struct {
	n     notify.Notifier
	clock func() time.Time
	retry retry.Policy
}

func (a notifyAction) Evaluate(ctx context.Context, cond eacl.Condition, req *gaa.Request) gaa.Outcome {
	if a.n == nil {
		return gaa.UnevaluatedOutcome("no notifier configured")
	}
	trig, args, err := parseValue(cond.Value)
	if err != nil {
		return badValue(err)
	}
	if !trig.fires(cond, req) {
		return skipped()
	}
	tag, rest := infoTag(args)
	recipient := "sysadmin"
	if len(rest) > 0 {
		recipient = rest[0]
	}
	ip, _ := req.Params.Get(gaa.ParamClientIP, cond.DefAuth)
	uri, _ := req.Params.Get(gaa.ParamRequestURI, cond.DefAuth)
	msg := notify.Message{
		Time:    a.clock(),
		To:      recipient,
		Subject: fmt.Sprintf("GAA alert: %s", tag),
		Body: fmt.Sprintf("time=%s ip=%s uri=%q decision=%s threat=%s",
			a.clock().Format(time.RFC3339), ip, uri, req.Decision, tag),
		Tag: tag,
	}
	if _, err := retry.Do(ctx, a.retry, func(ctx context.Context) error {
		return a.n.Notify(ctx, msg)
	}); err != nil {
		// Paper section 6: the request-result outcome conjoins into the
		// authorization status, so a failed mandatory notification
		// fails the status.
		return gaa.Outcome{Result: gaa.No, Class: gaa.ClassAction, Err: err, Detail: "notification failed"}
	}
	return gaa.MetOutcome(gaa.ClassAction, "notified "+recipient)
}

// updateLogAction implements rr_cond_update_log:
// "on:failure/BadGuys/info:IP" appends the requester identity to a
// group — the paper's growing blacklist ("updates the group BadGuys to
// include new suspicious IP address from the request", section 7.2).
// info:IP selects the client address, info:USER the authenticated user.
type updateLogAction struct {
	store *groups.Store
	spoof ids.NetworkIDS
}

func (a updateLogAction) Evaluate(_ context.Context, cond eacl.Condition, req *gaa.Request) gaa.Outcome {
	if a.store == nil {
		return gaa.UnevaluatedOutcome("no group store configured")
	}
	trig, args, err := parseValue(cond.Value)
	if err != nil {
		return badValue(err)
	}
	if !trig.fires(cond, req) {
		return skipped()
	}
	tag, rest := infoTag(args)
	if len(rest) == 0 {
		return badValue(fmt.Errorf("update_log needs a group name: %q", cond.Value))
	}
	group := rest[0]
	paramType := gaa.ParamClientIP
	if strings.EqualFold(tag, "user") {
		paramType = gaa.ParamUser
	}
	member, ok := req.Params.Get(paramType, cond.DefAuth)
	if !ok || member == "" {
		return gaa.UnevaluatedOutcome("no " + paramType + " parameter to record")
	}
	if paramType == gaa.ParamClientIP && a.spoof != nil {
		if spoofed, conf := a.spoof.SpoofIndication(member); spoofed {
			return gaa.MetOutcome(gaa.ClassAction,
				fmt.Sprintf("skipped: %s suspected spoofed (confidence %.2f)", member, conf))
		}
	}
	a.store.Add(group, member)
	return gaa.MetOutcome(gaa.ClassAction, fmt.Sprintf("added %s to %s", member, group))
}

// auditAction implements rr_cond_audit / post_cond_audit:
// "on:any/info:<tag>" writes a structured audit record.
type auditAction struct {
	log   audit.Logger
	clock func() time.Time
	retry retry.Policy
}

func (a auditAction) Evaluate(ctx context.Context, cond eacl.Condition, req *gaa.Request) gaa.Outcome {
	if a.log == nil {
		return gaa.UnevaluatedOutcome("no audit logger configured")
	}
	trig, args, err := parseValue(cond.Value)
	if err != nil {
		return badValue(err)
	}
	if !trig.fires(cond, req) {
		return skipped()
	}
	tag, _ := infoTag(args)
	ip, _ := req.Params.Get(gaa.ParamClientIP, cond.DefAuth)
	user, _ := req.Params.Get(gaa.ParamUser, cond.DefAuth)
	object, _ := req.Params.Get(gaa.ParamObject, cond.DefAuth)
	var right string
	if len(req.Rights) > 0 {
		right = req.Rights[0].DefAuth + " " + req.Rights[0].Value
	}
	kind := "authorization"
	if cond.Block == eacl.BlockPost {
		kind = "post_execution"
	}
	rec := audit.Record{
		Time:     a.clock(),
		Kind:     kind,
		Object:   object,
		Right:    right,
		Decision: req.Decision.String(),
		ClientIP: ip,
		User:     user,
		Info:     tag,
	}
	if _, err := retry.Do(ctx, a.retry, func(context.Context) error {
		return a.log.Log(rec)
	}); err != nil {
		return gaa.Outcome{Result: gaa.No, Class: gaa.ClassAction, Err: err, Detail: "audit write failed"}
	}
	return gaa.MetOutcome(gaa.ClassAction, "audited")
}

// threatAction implements rr_cond_set_threat_level: "on:failure/high"
// escalates the system threat level — the paper's "modifying overall
// system protection" countermeasure.
type threatAction struct {
	mgr *ids.Manager
}

func (a threatAction) Evaluate(_ context.Context, cond eacl.Condition, req *gaa.Request) gaa.Outcome {
	if a.mgr == nil {
		return gaa.UnevaluatedOutcome("no threat manager configured")
	}
	trig, args, err := parseValue(cond.Value)
	if err != nil {
		return badValue(err)
	}
	if !trig.fires(cond, req) {
		return skipped()
	}
	_, rest := infoTag(args)
	if len(rest) == 0 {
		return badValue(fmt.Errorf("set_threat_level needs a level: %q", cond.Value))
	}
	level, err := ids.ParseLevel(rest[0])
	if err != nil {
		return badValue(err)
	}
	a.mgr.Escalate(level)
	return gaa.MetOutcome(gaa.ClassAction, "threat level escalated to "+level.String())
}

// blockAction implements rr_cond_block_ip:
// "on:failure/duration:10m" adds the client address to the firewall
// block set — "blocking connections from particular parts of the
// network" (paper section 1). Without a duration the block is
// permanent.
type blockAction struct {
	set   *netblock.Set
	spoof ids.NetworkIDS
}

func (a blockAction) Evaluate(_ context.Context, cond eacl.Condition, req *gaa.Request) gaa.Outcome {
	if a.set == nil {
		return gaa.UnevaluatedOutcome("no block set configured")
	}
	trig, args, err := parseValue(cond.Value)
	if err != nil {
		return badValue(err)
	}
	if !trig.fires(cond, req) {
		return skipped()
	}
	var dur time.Duration
	for _, arg := range args {
		if v, ok := strings.CutPrefix(arg, "duration:"); ok {
			d, err := time.ParseDuration(v)
			if err != nil {
				return badValue(fmt.Errorf("bad duration %q", v))
			}
			dur = d
		}
	}
	ip, ok := req.Params.Get(gaa.ParamClientIP, cond.DefAuth)
	if !ok || ip == "" {
		return gaa.UnevaluatedOutcome("no client address to block")
	}
	if a.spoof != nil {
		if spoofed, conf := a.spoof.SpoofIndication(ip); spoofed {
			return gaa.MetOutcome(gaa.ClassAction,
				fmt.Sprintf("skipped: %s suspected spoofed (confidence %.2f)", ip, conf))
		}
	}
	a.set.Block(ip, dur)
	return gaa.MetOutcome(gaa.ClassAction, "blocked "+ip)
}

// countAction implements rr_cond_count:
// "on:failure/failed_login/key:accessid_USER" records one event in the
// sliding-window counter store. Paired with pre_cond_threshold it
// realizes the paper's "number of failed login attempts within a given
// period of time" (section 3, item 4). The default key parameter is
// the client address.
type countAction struct {
	counters *conditions.Counters
}

func (a countAction) Evaluate(_ context.Context, cond eacl.Condition, req *gaa.Request) gaa.Outcome {
	if a.counters == nil {
		return gaa.UnevaluatedOutcome("no counter store configured")
	}
	trig, args, err := parseValue(cond.Value)
	if err != nil {
		return badValue(err)
	}
	if !trig.fires(cond, req) {
		return skipped()
	}
	_, rest := infoTag(args)
	if len(rest) == 0 {
		return badValue(fmt.Errorf("count needs a counter name: %q", cond.Value))
	}
	counter := rest[0]
	keyParam := gaa.ParamClientIP
	for _, arg := range rest[1:] {
		if v, ok := strings.CutPrefix(arg, "key:"); ok {
			keyParam = v
		}
	}
	keyValue, ok := req.Params.Get(keyParam, cond.DefAuth)
	if !ok || keyValue == "" {
		return gaa.UnevaluatedOutcome("no " + keyParam + " parameter to count")
	}
	a.counters.Add(conditions.CounterKey(counter, keyValue))
	return gaa.MetOutcome(gaa.ClassAction, "counted "+counter)
}
