// Package logscan implements the related-work comparator of the
// paper's section 10: Almgren, Debar and Dacier's "lightweight tool
// for detecting web server attacks" that scans Common Log Format
// access logs for attack signatures offline. The paper's argument —
// "the monitor can not directly interact with a web server and, thus,
// can not stop the ongoing attacks" — is what experiment E9 measures
// by replaying the same workload through both detectors.
package logscan

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"time"

	"gaaapi/internal/ids"
)

// Entry is one parsed CLF line:
//
//	host ident authuser [date] "request" status bytes
type Entry struct {
	Host    string
	User    string // "-" normalized to ""
	Time    time.Time
	Request string // the quoted request line, e.g. "GET /x HTTP/1.0"
	Status  int
	Bytes   int // -1 when "-"
}

// clfRe matches the NCSA Common Log Format.
var clfRe = regexp.MustCompile(`^(\S+) (\S+) (\S+) \[([^\]]+)\] "((?:[^"\\]|\\.)*)" (\d{3}) (\S+)$`)

// ParseLine parses one CLF line.
func ParseLine(line string) (Entry, error) {
	m := clfRe.FindStringSubmatch(line)
	if m == nil {
		return Entry{}, fmt.Errorf("not a CLF line: %q", line)
	}
	ts, err := time.Parse("02/Jan/2006:15:04:05 -0700", m[4])
	if err != nil {
		return Entry{}, fmt.Errorf("bad CLF timestamp %q: %w", m[4], err)
	}
	status, err := strconv.Atoi(m[6])
	if err != nil {
		return Entry{}, fmt.Errorf("bad status %q: %w", m[6], err)
	}
	bytes := -1
	if m[7] != "-" {
		if bytes, err = strconv.Atoi(m[7]); err != nil {
			return Entry{}, fmt.Errorf("bad byte count %q: %w", m[7], err)
		}
	}
	user := m[3]
	if user == "-" {
		user = ""
	}
	return Entry{
		Host:    m[1],
		User:    user,
		Time:    ts,
		Request: m[5],
		Status:  status,
		Bytes:   bytes,
	}, nil
}

// Finding is one attack detected in the log.
type Finding struct {
	Entry     Entry
	Signature ids.Signature
	// Executed reports whether the logged status shows the request was
	// served (2xx/3xx): the attack ran before the offline scan saw it.
	Executed bool
	// Line is the 1-based log line number.
	Line int
}

// Scanner matches log entries against a signature database.
type Scanner struct {
	db *ids.DB
}

// NewScanner builds a scanner over the given signatures.
func NewScanner(db *ids.DB) *Scanner {
	return &Scanner{db: db}
}

// Scan reads CLF lines from r and returns the findings plus the number
// of lines scanned. Unparsable lines are counted and skipped (access
// logs in the wild contain noise), reported via malformed.
func (s *Scanner) Scan(r io.Reader) (findings []Finding, lines, malformed int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		lines++
		text := sc.Text()
		if text == "" {
			continue
		}
		entry, perr := ParseLine(text)
		if perr != nil {
			malformed++
			continue
		}
		for _, sig := range s.db.Match(entry.Request) {
			findings = append(findings, Finding{
				Entry:     entry,
				Signature: sig,
				Executed:  entry.Status >= 200 && entry.Status < 400,
				Line:      lines,
			})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, lines, malformed, fmt.Errorf("read log: %w", err)
	}
	return findings, lines, malformed, nil
}

// Summary aggregates findings per signature.
type Summary struct {
	Signature string
	Total     int
	Executed  int // attacks the server had already served
	Blocked   int // attacks the server denied before execution
}

// Summarize groups findings by signature name, in first-seen order.
func Summarize(findings []Finding) []Summary {
	index := make(map[string]int)
	var out []Summary
	for _, f := range findings {
		i, ok := index[f.Signature.Name]
		if !ok {
			i = len(out)
			index[f.Signature.Name] = i
			out = append(out, Summary{Signature: f.Signature.Name})
		}
		out[i].Total++
		if f.Executed {
			out[i].Executed++
		} else {
			out[i].Blocked++
		}
	}
	return out
}
