package logscan

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gaaapi/internal/httpd"
	"gaaapi/internal/ids"
)

const sampleLog = `10.0.0.1 - alice [19/May/2003:12:00:00 +0000] "GET /index.html" 200 512
10.0.0.66 - - [19/May/2003:12:00:01 +0000] "GET /cgi-bin/phf?Qalias=x" 200 88
10.0.0.66 - - [19/May/2003:12:00:02 +0000] "GET /cgi-bin/test-cgi" 403 -
not a log line at all
10.0.0.9 - - [19/May/2003:12:00:03 +0000] "GET /scripts/..%c0%af../cmd.exe" 500 20
`

func TestParseLine(t *testing.T) {
	e, err := ParseLine(`10.0.0.66 - alice [19/May/2003:12:00:01 +0000] "GET /cgi-bin/phf?Qalias=x" 200 88`)
	if err != nil {
		t.Fatalf("ParseLine: %v", err)
	}
	if e.Host != "10.0.0.66" || e.User != "alice" || e.Status != 200 || e.Bytes != 88 {
		t.Errorf("entry = %+v", e)
	}
	if e.Request != "GET /cgi-bin/phf?Qalias=x" {
		t.Errorf("request = %q", e.Request)
	}
	want := time.Date(2003, 5, 19, 12, 0, 1, 0, time.UTC)
	if !e.Time.Equal(want) {
		t.Errorf("time = %v, want %v", e.Time, want)
	}
}

func TestParseLineVariants(t *testing.T) {
	// "-" byte count and anonymous user.
	e, err := ParseLine(`1.2.3.4 - - [19/May/2003:12:00:00 +0000] "GET /x" 403 -`)
	if err != nil {
		t.Fatal(err)
	}
	if e.Bytes != -1 || e.User != "" {
		t.Errorf("entry = %+v", e)
	}
	// Malformed lines error.
	for _, bad := range []string{
		"",
		"nonsense",
		`1.2.3.4 - - [not-a-date] "GET /" 200 5`,
		`1.2.3.4 - - [19/May/2003:12:00:00 +0000] "GET /" xxx 5`,
		`1.2.3.4 - - [19/May/2003:12:00:00 +0000] "GET /" 200 abc`,
	} {
		if _, err := ParseLine(bad); err == nil {
			t.Errorf("ParseLine(%q): want error", bad)
		}
	}
}

func TestScanFindsAttacksAndCountsMalformed(t *testing.T) {
	s := NewScanner(ids.NewDB(ids.DefaultSignatures()...))
	findings, lines, malformed, err := s.Scan(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if lines != 5 || malformed != 1 {
		t.Errorf("lines=%d malformed=%d, want 5/1", lines, malformed)
	}
	if len(findings) != 3 {
		t.Fatalf("findings = %d, want 3 (phf, test-cgi, nimda)", len(findings))
	}
	// The phf hit was SERVED (status 200): the offline scanner sees it
	// only after the damage is done.
	if !findings[0].Executed || findings[0].Signature.Name != "phf" {
		t.Errorf("finding[0] = %+v", findings[0])
	}
	// The test-cgi hit was blocked (403).
	if findings[1].Executed || findings[1].Signature.Name != "test-cgi" {
		t.Errorf("finding[1] = %+v", findings[1])
	}
	// 500 does not count as executed.
	if findings[2].Executed {
		t.Errorf("finding[2] = %+v", findings[2])
	}
}

func TestSummarize(t *testing.T) {
	s := NewScanner(ids.NewDB(ids.DefaultSignatures()...))
	findings, _, _, err := s.Scan(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	sums := Summarize(findings)
	if len(sums) != 3 {
		t.Fatalf("summaries = %+v", sums)
	}
	if sums[0].Signature != "phf" || sums[0].Executed != 1 || sums[0].Blocked != 0 {
		t.Errorf("phf summary = %+v", sums[0])
	}
	if sums[1].Signature != "test-cgi" || sums[1].Blocked != 1 {
		t.Errorf("test-cgi summary = %+v", sums[1])
	}
}

// TestRoundTripWithServerCLF: lines produced by the server's CLF
// formatter parse back exactly.
func TestRoundTripWithServerCLF(t *testing.T) {
	req := httptest.NewRequest("GET", "/cgi-bin/phf?Qalias=x", nil)
	req.RemoteAddr = "10.0.0.66:4242"
	rec := httpd.NewRequestRec(req, nil, time.Date(2003, 5, 19, 12, 0, 0, 0, time.UTC))
	line := httpd.FormatCLF(rec, 403, 0)
	e, err := ParseLine(line)
	if err != nil {
		t.Fatalf("server CLF line does not parse: %v\nline: %s", err, line)
	}
	if e.Host != "10.0.0.66" || e.Status != 403 || e.Request != "GET /cgi-bin/phf?Qalias=x" {
		t.Errorf("entry = %+v", e)
	}
	s := NewScanner(ids.NewDB(ids.DefaultSignatures()...))
	findings, _, _, err := s.Scan(strings.NewReader(line + "\n"))
	if err != nil || len(findings) != 1 || findings[0].Signature.Name != "phf" {
		t.Errorf("scan of server line = %v, %v", findings, err)
	}
}
