package execctl

import (
	"context"
	"errors"
	"testing"
	"time"

	"gaaapi/internal/gaa"
)

func TestUsageAccounting(t *testing.T) {
	base := time.Unix(1000, 0)
	now := base
	u := NewUsage(func() time.Time { return now })
	u.AddCPU(25 * time.Millisecond)
	u.AddMem(2048)
	u.AddOutput(100)
	u.AddOutput(50)
	now = base.Add(300 * time.Millisecond)

	s := u.Snapshot()
	if s.CPUMillis != 25 || s.MemBytes != 2048 || s.OutputBytes != 150 || s.WallMillis != 300 {
		t.Errorf("snapshot = %+v", s)
	}

	ps := gaa.ParamList(s.Params())
	if v, _ := ps.GetInt(gaa.ParamCPUMillis, gaa.AuthorityAny); v != 25 {
		t.Errorf("cpu param = %d", v)
	}
	if v, _ := ps.GetInt(gaa.ParamOutputBytes, gaa.AuthorityAny); v != 150 {
		t.Errorf("output param = %d", v)
	}
	if v, _ := ps.GetInt(gaa.ParamWallMillis, gaa.AuthorityAny); v != 300 {
		t.Errorf("wall param = %d", v)
	}
	if v, _ := ps.GetInt(gaa.ParamMemBytes, gaa.AuthorityAny); v != 2048 {
		t.Errorf("mem param = %d", v)
	}
}

func TestRunCompletesWithoutViolation(t *testing.T) {
	u := NewUsage(nil)
	res := Run(context.Background(), u,
		func(_ context.Context, u *Usage) error {
			u.AddOutput(10)
			return nil
		},
		func(Snapshot) gaa.Decision { return gaa.Yes },
		time.Millisecond)
	if res.Err != nil || res.Violated {
		t.Errorf("result = %+v", res)
	}
	if res.OpStatus() != gaa.Yes {
		t.Errorf("OpStatus = %v, want yes", res.OpStatus())
	}
	if res.Final.OutputBytes != 10 {
		t.Errorf("final usage = %+v", res.Final)
	}
	if res.Checks == 0 {
		t.Error("final check did not run")
	}
}

func TestRunAbortsRunawayOperation(t *testing.T) {
	u := NewUsage(nil)
	started := make(chan struct{})
	res := Run(context.Background(), u,
		func(ctx context.Context, u *Usage) error {
			close(started)
			// A runaway CGI: consumes CPU until cancelled.
			for {
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(time.Millisecond):
					u.AddCPU(10 * time.Millisecond)
				}
			}
		},
		func(s Snapshot) gaa.Decision {
			if s.CPUMillis > 50 {
				return gaa.No
			}
			return gaa.Yes
		},
		time.Millisecond)
	<-started
	if !res.Violated {
		t.Fatalf("result = %+v, want violation", res)
	}
	if !errors.Is(res.Err, ErrAborted) {
		t.Errorf("err = %v, want ErrAborted", res.Err)
	}
	if res.OpStatus() != gaa.No {
		t.Errorf("OpStatus = %v, want no", res.OpStatus())
	}
}

func TestRunFinalCheckCatchesFastViolation(t *testing.T) {
	u := NewUsage(nil)
	// The operation finishes before any periodic tick but violates the
	// output quota; the final check must catch it.
	res := Run(context.Background(), u,
		func(_ context.Context, u *Usage) error {
			u.AddOutput(1 << 20)
			return nil
		},
		func(s Snapshot) gaa.Decision {
			if s.OutputBytes > 4096 {
				return gaa.No
			}
			return gaa.Yes
		},
		time.Hour) // periodic checks effectively disabled
	if !res.Violated {
		t.Fatalf("fast violation not caught: %+v", res)
	}
	if !errors.Is(res.Err, ErrAborted) {
		t.Errorf("err = %v, want ErrAborted", res.Err)
	}
}

func TestRunNilCheck(t *testing.T) {
	u := NewUsage(nil)
	res := Run(context.Background(), u,
		func(context.Context, *Usage) error { return nil },
		nil, time.Millisecond)
	if res.Err != nil || res.Violated || res.Checks != 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestRunPropagatesOperationError(t *testing.T) {
	boom := errors.New("script crashed")
	u := NewUsage(nil)
	res := Run(context.Background(), u,
		func(context.Context, *Usage) error { return boom },
		func(Snapshot) gaa.Decision { return gaa.Yes },
		time.Millisecond)
	if !errors.Is(res.Err, boom) {
		t.Errorf("err = %v, want the operation error", res.Err)
	}
	if res.Violated {
		t.Error("no violation expected")
	}
	if res.OpStatus() != gaa.No {
		t.Errorf("OpStatus = %v, want no for a failed op", res.OpStatus())
	}
}

func TestRunParentContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	u := NewUsage(nil)
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	res := Run(ctx, u,
		func(ctx context.Context, _ *Usage) error {
			<-ctx.Done()
			return ctx.Err()
		},
		func(Snapshot) gaa.Decision { return gaa.Yes },
		time.Millisecond)
	if res.Err == nil {
		t.Error("want error after parent cancellation")
	}
}

func TestRunDefaultInterval(t *testing.T) {
	u := NewUsage(nil)
	res := Run(context.Background(), u,
		func(context.Context, *Usage) error { return nil },
		func(Snapshot) gaa.Decision { return gaa.Yes },
		0)
	if res.Err != nil {
		t.Errorf("err = %v", res.Err)
	}
}
