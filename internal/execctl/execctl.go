// Package execctl implements the paper's execution control phase (the
// unfinished section 6 step 3, listed as future work in section 9): the
// requested operation runs under resource accounting while the GAA-API
// mid-conditions are re-checked periodically; a violated mid-condition
// aborts the operation in real time ("a user process consumes excessive
// system resources", section 1).
package execctl

import (
	"context"
	"errors"
	"strconv"
	"sync/atomic"
	"time"

	"gaaapi/internal/gaa"
)

// Usage is the resource accounting for one running operation. The
// operation (e.g. a simulated CGI script) credits its consumption;
// snapshots are read concurrently by the monitor. All methods are safe
// for concurrent use.
type Usage struct {
	start time.Time
	clock func() time.Time

	cpuMillis   atomic.Int64
	memBytes    atomic.Int64
	outputBytes atomic.Int64
}

// NewUsage starts accounting at now(); a nil clock means time.Now.
func NewUsage(clock func() time.Time) *Usage {
	if clock == nil {
		clock = time.Now
	}
	return &Usage{start: clock(), clock: clock}
}

// Reset restarts accounting at clock() (nil means time.Now), zeroing
// all counters, so servers can pool Usage values across requests.
// Must not be called while an operation is still crediting usage.
func (u *Usage) Reset(clock func() time.Time) {
	if clock == nil {
		clock = time.Now
	}
	u.clock = clock
	u.start = clock()
	u.cpuMillis.Store(0)
	u.memBytes.Store(0)
	u.outputBytes.Store(0)
}

// AddCPU credits simulated CPU consumption.
func (u *Usage) AddCPU(d time.Duration) { u.cpuMillis.Add(d.Milliseconds()) }

// AddMem credits memory consumption.
func (u *Usage) AddMem(bytes int64) { u.memBytes.Add(bytes) }

// AddOutput credits bytes written to the client.
func (u *Usage) AddOutput(bytes int64) { u.outputBytes.Add(bytes) }

// Snapshot captures current consumption.
func (u *Usage) Snapshot() Snapshot {
	return Snapshot{
		CPUMillis:   u.cpuMillis.Load(),
		WallMillis:  u.clock().Sub(u.start).Milliseconds(),
		MemBytes:    u.memBytes.Load(),
		OutputBytes: u.outputBytes.Load(),
	}
}

// Snapshot is a point-in-time usage reading.
type Snapshot struct {
	CPUMillis   int64
	WallMillis  int64
	MemBytes    int64
	OutputBytes int64
}

// Params renders the snapshot as GAA request parameters for
// mid-condition evaluation (mid_cond_quota local cpu_ms<=50 ...).
func (s Snapshot) Params() []gaa.Param {
	return []gaa.Param{
		{Type: gaa.ParamCPUMillis, Authority: gaa.AuthorityAny, Value: strconv.FormatInt(s.CPUMillis, 10)},
		{Type: gaa.ParamWallMillis, Authority: gaa.AuthorityAny, Value: strconv.FormatInt(s.WallMillis, 10)},
		{Type: gaa.ParamMemBytes, Authority: gaa.AuthorityAny, Value: strconv.FormatInt(s.MemBytes, 10)},
		{Type: gaa.ParamOutputBytes, Authority: gaa.AuthorityAny, Value: strconv.FormatInt(s.OutputBytes, 10)},
	}
}

// ErrAborted is returned (wrapped) when a mid-condition violation
// aborted the operation.
var ErrAborted = errors.New("operation aborted: mid-condition violated")

// Check evaluates the mid-conditions against a usage snapshot: Yes to
// continue, No to abort.
type Check func(Snapshot) gaa.Decision

// Result reports how a monitored operation ended.
type Result struct {
	// Err is the operation error; errors.Is(Err, ErrAborted) when a
	// mid-condition violation stopped it.
	Err error
	// Violated reports whether a mid-condition violation occurred
	// (even if the operation finished before noticing cancellation).
	Violated bool
	// Checks counts how many mid-condition evaluations ran.
	Checks int
	// Final is the usage at completion.
	Final Snapshot
}

// OpStatus maps the result to the paper's operation status for the
// post-execution phase.
func (r Result) OpStatus() gaa.Decision {
	if r.Err != nil || r.Violated {
		return gaa.No
	}
	return gaa.Yes
}

// Run executes op under usage accounting while check is evaluated
// every interval; a No verdict cancels op's context and Run returns
// with ErrAborted. A final check runs after completion so violations
// faster than the interval are still recorded. A nil check disables
// monitoring (the paper's phase with no mid-conditions).
func Run(ctx context.Context, u *Usage, op func(context.Context, *Usage) error, check Check, interval time.Duration) Result {
	if interval <= 0 {
		interval = time.Millisecond
	}
	var res Result
	if check == nil {
		// Unmonitored operation: run synchronously on this goroutine.
		// No cancellation source exists besides the caller's context,
		// so the goroutine, channel and derived context would be pure
		// overhead on the server's hot path.
		res.Err = op(ctx, u)
		res.Final = u.Snapshot()
		return res
	}
	opCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	done := make(chan error, 1)
	go func() {
		done <- op(opCtx, u)
	}()

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case err := <-done:
			res.Final = u.Snapshot()
			// Final check: a violation that the operation outran is
			// still a violation (and fails the operation status).
			res.Checks++
			if check(res.Final) == gaa.No {
				res.Violated = true
				if err == nil {
					err = ErrAborted
				}
			}
			res.Err = err
			return res
		case <-ticker.C:
			res.Checks++
			if check(u.Snapshot()) == gaa.No {
				res.Violated = true
				cancel()
				err := <-done
				res.Final = u.Snapshot()
				if err == nil || errors.Is(err, context.Canceled) {
					err = ErrAborted
				}
				res.Err = err
				return res
			}
		}
	}
}
