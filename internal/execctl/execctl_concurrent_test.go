package execctl

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"gaaapi/internal/gaa"
)

// TestRunConcurrentUsageWriters aborts an operation whose consumption
// is credited from several goroutines at once: the monitor's threshold
// check reads snapshots while writers race, and the abort must land
// without losing accounting (run under -race).
func TestRunConcurrentUsageWriters(t *testing.T) {
	u := NewUsage(nil)
	const writers = 8
	res := Run(context.Background(), u,
		func(ctx context.Context, u *Usage) error {
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-ctx.Done():
							return
						case <-time.After(time.Millisecond / 2):
							u.AddCPU(5 * time.Millisecond)
							u.AddOutput(64)
						}
					}
				}()
			}
			wg.Wait()
			return ctx.Err()
		},
		func(s Snapshot) gaa.Decision {
			if s.CPUMillis > 100 {
				return gaa.No
			}
			return gaa.Yes
		},
		time.Millisecond)
	if !res.Violated || !errors.Is(res.Err, ErrAborted) {
		t.Fatalf("result = %+v, want threshold abort under concurrent writers", res)
	}
	if res.Final.CPUMillis <= 100 {
		t.Errorf("final cpu = %d, want past the 100ms threshold", res.Final.CPUMillis)
	}
	// Accounting sanity: output bytes are credited in lockstep (64 per
	// 5ms cpu credit), so the ratio must hold exactly.
	if got, want := res.Final.OutputBytes, res.Final.CPUMillis/5*64; got != want {
		t.Errorf("output = %d, want %d (lost updates under concurrency)", got, want)
	}
}

// TestConcurrentOperationsIndependent runs several monitored operations
// in parallel, each with its own Usage; thresholds must fire per
// operation without cross-talk.
func TestConcurrentOperationsIndependent(t *testing.T) {
	const ops = 6
	results := make([]Result, ops)
	var wg sync.WaitGroup
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			u := NewUsage(nil)
			greedy := i%2 == 0
			results[i] = Run(context.Background(), u,
				func(ctx context.Context, u *Usage) error {
					for n := 0; n < 40; n++ {
						select {
						case <-ctx.Done():
							return ctx.Err()
						case <-time.After(time.Millisecond / 4):
						}
						if greedy {
							u.AddMem(1 << 20)
						} else {
							u.AddMem(16)
						}
					}
					return nil
				},
				func(s Snapshot) gaa.Decision {
					if s.MemBytes > 4<<20 {
						return gaa.No
					}
					return gaa.Yes
				},
				time.Millisecond)
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		greedy := i%2 == 0
		if greedy && !res.Violated {
			t.Errorf("op %d (greedy): %+v, want memory threshold violation", i, res)
		}
		if !greedy && res.Violated {
			t.Errorf("op %d (frugal): %+v, violated by a neighbour's usage", i, res)
		}
	}
}
