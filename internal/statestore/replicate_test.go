package statestore

import (
	"encoding/json"
	"testing"
	"time"

	"gaaapi/internal/groups"
	"gaaapi/internal/ids"
	"gaaapi/internal/netblock"
)

// attachLive builds a store-less Adaptive over live components — the
// shape the cluster layer uses on nodes running without -state-dir.
func attachLive(t *testing.T) (*Adaptive, Components) {
	t.Helper()
	c := Components{
		Blocks: netblock.NewSet(),
		Threat: ids.NewManager(ids.Low),
		Groups: groups.NewStore(),
	}
	a, err := Attach(nil, c)
	if err != nil {
		t.Fatalf("Attach(nil store): %v", err)
	}
	return a, c
}

func TestMirrorSeesLocalMutations(t *testing.T) {
	a, c := attachLive(t)
	var kinds []string
	a.SetMirror(func(kind string, data json.RawMessage) {
		kinds = append(kinds, kind)
		if len(data) == 0 {
			t.Fatalf("mirror got empty payload for %s", kind)
		}
	})
	c.Blocks.Block("10.0.0.1", time.Hour)
	c.Threat.Set(ids.Medium)
	c.Groups.Add("BadGuys", "10.0.0.1")
	want := []string{KindBlock, KindThreat, KindGroup}
	if len(kinds) != len(want) {
		t.Fatalf("mirror saw %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("mirror saw %v, want %v", kinds, want)
		}
	}
}

func TestApplyRemoteBypassesMirror(t *testing.T) {
	a, c := attachLive(t)
	var mirrored int
	a.SetMirror(func(string, json.RawMessage) { mirrored++ })

	ev, _ := json.Marshal(netblock.Event{Addr: "10.0.0.2", Expiry: time.Now().Add(time.Hour)})
	changed, err := a.ApplyRemote(Record{Seq: 1, Kind: KindBlock, Data: ev})
	if err != nil || !changed {
		t.Fatalf("ApplyRemote = %v, %v", changed, err)
	}
	tr, _ := json.Marshal(ids.Transition{To: ids.High, At: time.Now()})
	if _, err := a.ApplyRemote(Record{Seq: 2, Kind: KindThreat, Data: tr}); err != nil {
		t.Fatalf("ApplyRemote threat: %v", err)
	}
	if !c.Blocks.Blocked("10.0.0.2") || c.Threat.Level() != ids.High {
		t.Fatal("remote records not applied")
	}
	if mirrored != 0 {
		t.Fatalf("remote applies hit the mirror %d times; records would loop around the cluster", mirrored)
	}
}

func TestApplyRemoteDropsExpiredBlock(t *testing.T) {
	a, c := attachLive(t)
	ev, _ := json.Marshal(netblock.Event{Addr: "10.0.0.3", Expiry: time.Now().Add(-time.Minute)})
	changed, err := a.ApplyRemote(Record{Seq: 1, Kind: KindBlock, Data: ev})
	if err != nil || changed {
		t.Fatalf("expired block applied: %v, %v", changed, err)
	}
	if c.Blocks.Blocked("10.0.0.3") {
		t.Fatal("expired remote block is live")
	}
}

func TestApplyRemoteMalformedAndUnknown(t *testing.T) {
	a, _ := attachLive(t)
	if _, err := a.ApplyRemote(Record{Seq: 1, Kind: KindBlock, Data: json.RawMessage(`{"addr": 12}`)}); err == nil {
		t.Fatal("malformed payload accepted")
	}
	changed, err := a.ApplyRemote(Record{Seq: 2, Kind: "future-kind", Data: json.RawMessage(`{}`)})
	if err != nil || changed {
		t.Fatalf("unknown kind not skipped: %v, %v", changed, err)
	}
}

func TestSnapshotRoundTripMerges(t *testing.T) {
	a, c := attachLive(t)
	c.Blocks.Block("10.0.0.4", time.Hour)
	c.Threat.Set(ids.Medium)
	c.Groups.Add("BadGuys", "10.0.0.4")
	snap, err := a.StateSnapshot()
	if err != nil {
		t.Fatalf("StateSnapshot: %v", err)
	}

	b, bc := attachLive(t)
	bc.Blocks.Block("10.0.0.5", time.Hour) // b's own state must survive the merge
	applied, err := b.ApplyRemoteSnapshot(snap)
	if err != nil {
		t.Fatalf("ApplyRemoteSnapshot: %v", err)
	}
	if applied < 3 {
		t.Fatalf("applied = %d, want at least 3", applied)
	}
	if !bc.Blocks.Blocked("10.0.0.4") || !bc.Blocks.Blocked("10.0.0.5") {
		t.Fatal("snapshot merge lost a block")
	}
	if bc.Threat.Level() != ids.Medium || !bc.Groups.Contains("BadGuys", "10.0.0.4") {
		t.Fatal("snapshot merge lost threat or group state")
	}
	// Re-applying the same snapshot is a no-op.
	if again, _ := b.ApplyRemoteSnapshot(snap); again != 0 {
		t.Fatalf("snapshot re-apply changed %d entries", again)
	}
}

func TestEncodeDecodeFramesRoundTrip(t *testing.T) {
	recs := []Record{
		{Seq: 1, Kind: KindBlock, Data: json.RawMessage(`{"addr":"10.0.0.1"}`)},
		{Seq: 2, Kind: KindGroup, Data: json.RawMessage(`{"group":"BadGuys","member":"10.0.0.1"}`)},
	}
	frames, err := EncodeFrames(recs)
	if err != nil {
		t.Fatalf("EncodeFrames: %v", err)
	}
	got, err := DecodeFrames(frames)
	if err != nil {
		t.Fatalf("DecodeFrames: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip lost records: %d != %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Seq != recs[i].Seq || got[i].Kind != recs[i].Kind {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}

	// A torn tail surfaces the valid prefix plus a *FrameError.
	torn, err := DecodeFrames(frames[:len(frames)-4])
	var ferr *FrameError
	if err == nil {
		t.Fatal("torn tail decoded cleanly")
	}
	if !asFrameError(err, &ferr) {
		t.Fatalf("error type = %T", err)
	}
	if len(torn) != 1 || torn[0].Seq != 1 {
		t.Fatalf("valid prefix = %+v", torn)
	}
	if ferr.Dropped == 0 || ferr.Reason == "" {
		t.Fatalf("FrameError = %+v", ferr)
	}
}

// asFrameError is errors.As without the import dance in this file.
func asFrameError(err error, target **FrameError) bool {
	fe, ok := err.(*FrameError)
	if ok {
		*target = fe
	}
	return ok
}
