package statestore

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"

	"gaaapi/internal/conditions"
	"gaaapi/internal/groups"
	"gaaapi/internal/ids"
	"gaaapi/internal/ids/adaptive"
	"gaaapi/internal/netblock"
)

// Record kinds journaled by the adaptive wiring. Exported: the cluster
// replication layer ships exactly these records between nodes, so the
// journal vocabulary is the replication vocabulary.
const (
	KindBlock   = "block"
	KindThreat  = "threat"
	KindCounter = "count"
	KindGroup   = "group"
	KindScore   = "score"
	KindProfile = "profile"
)

// Components are the adaptive-state holders a store keeps durable. Any
// field may be nil; it is then neither restored nor journaled.
type Components struct {
	// Blocks is the firewall-facing block set; restarts restore blocks
	// with their original expiries.
	Blocks *netblock.Set
	// Threat is the system threat level plus its escalation history.
	Threat *ids.Manager
	// Counters are the lockout/failure sliding-window counters;
	// restarts restore in-flight lockouts with original timestamps.
	Counters *conditions.Counters
	// Groups is the dynamic blacklist store ("BadGuys").
	Groups *groups.Store
	// Scorer is the self-adaptive threat-scoring engine; its per-source
	// score events and resource profile checkpoints persist and
	// replicate like the rest of the adaptive state.
	Scorer *adaptive.Engine
	// Clock overrides time.Now for expiry pruning (tests).
	Clock func() time.Time
}

// stateSnapshot is the JSON shape of a compacted snapshot.
type stateSnapshot struct {
	Blocks   []netblock.Entry             `json:"blocks,omitempty"`
	Threat   *threatState                 `json:"threat,omitempty"`
	Counters map[string][]time.Time       `json:"counters,omitempty"`
	Groups   map[string][]string          `json:"groups,omitempty"`
	Scores   []adaptive.ScoreEvent        `json:"scores,omitempty"`
	Profiles []adaptive.ProfileCheckpoint `json:"profiles,omitempty"`
}

type threatState struct {
	Level   string           `json:"level"`
	History []ids.Transition `json:"history,omitempty"`
}

// Adaptive binds a Store to live components: recovery replays the
// snapshot plus the WAL tail into them, then every further mutation is
// journaled, and compaction snapshots their current state. A nil store
// is allowed (memory-only deployments that still replicate): nothing
// is restored or journaled, but the mirror hook and remote-record
// application keep working.
type Adaptive struct {
	store *Store
	c     Components

	journalErrors atomic.Uint64
	restored      RestoreSummary

	// mirror receives every locally originated journal record (kind +
	// marshaled payload) — the cluster replication tap. Records applied
	// via ApplyRemote do NOT reach the mirror; that is what breaks
	// replication loops. Set once via SetMirror before serving traffic.
	mirror atomic.Pointer[func(kind string, data json.RawMessage)]
}

// RestoreSummary describes what Attach put back into the components.
type RestoreSummary struct {
	// Blocks is the number of live blocks restored.
	Blocks int `json:"blocks"`
	// ExpiredBlocks counts persisted blocks already past their deadline
	// at restore time (dropped).
	ExpiredBlocks int `json:"expired_blocks,omitempty"`
	// ThreatLevel is the restored level ("" when none was persisted).
	ThreatLevel string `json:"threat_level,omitempty"`
	// CounterEvents is the number of replayed counter events.
	CounterEvents int `json:"counter_events"`
	// GroupMembers is the number of restored group memberships.
	GroupMembers int `json:"group_members"`
	// Scores is the number of restored per-source score entries.
	Scores int `json:"scores,omitempty"`
	// Profiles is the number of restored resource profiles.
	Profiles int `json:"profiles,omitempty"`
}

// Attach restores the store's recovered state into the components and
// wires their journals into the store. Call once, before serving
// traffic. A nil store skips restore and journaling but still taps
// mutations for the mirror.
func Attach(store *Store, c Components) (*Adaptive, error) {
	if c.Clock == nil {
		c.Clock = time.Now
	}
	a := &Adaptive{store: store, c: c}

	if store != nil {
		if raw, ok := store.SnapshotData(); ok {
			var snap stateSnapshot
			if err := json.Unmarshal(raw, &snap); err != nil {
				return nil, fmt.Errorf("statestore: decode snapshot state: %w", err)
			}
			a.applySnapshot(&snap)
		}
		for _, rec := range store.Tail() {
			if err := a.applyRecord(rec); err != nil {
				return nil, err
			}
		}
	}

	// Journal hooks go in after restore so replay is not re-journaled.
	if c.Blocks != nil {
		c.Blocks.SetJournal(func(ev netblock.Event) { a.append(KindBlock, ev) })
	}
	if c.Threat != nil {
		c.Threat.SetJournal(func(tr ids.Transition) { a.append(KindThreat, tr) })
	}
	if c.Counters != nil {
		c.Counters.SetJournal(func(ev conditions.CounterEvent) { a.append(KindCounter, ev) })
	}
	if c.Groups != nil {
		c.Groups.SetJournal(func(ev groups.Event) { a.append(KindGroup, ev) })
	}
	if c.Scorer != nil {
		c.Scorer.SetJournal(
			func(ev adaptive.ScoreEvent) { a.append(KindScore, ev) },
			func(cp adaptive.ProfileCheckpoint) { a.append(KindProfile, cp) },
		)
	}
	if store != nil {
		store.SetSnapshotFunc(a.snapshot)
	}
	return a, nil
}

// SetMirror installs the replication tap: fn receives the kind and
// marshaled payload of every locally originated mutation, after it was
// journaled (or counted as a journal error — replication keeps working
// through disk faults). Call before serving traffic.
func (a *Adaptive) SetMirror(fn func(kind string, data json.RawMessage)) {
	a.mirror.Store(&fn)
}

// append journals one mutation; failures (disk faults) are counted,
// not propagated — the server keeps enforcing from memory. The mirror,
// when set, sees the record regardless: a local disk fault must not
// stop the fleet from learning about an attacker.
func (a *Adaptive) append(kind string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		a.journalErrors.Add(1)
		return
	}
	if a.store != nil {
		if err := a.store.Append(kind, json.RawMessage(data)); err != nil {
			a.journalErrors.Add(1)
		}
	}
	if m := a.mirror.Load(); m != nil {
		(*m)(kind, data)
	}
}

// journalRemote persists a record merged from a peer without touching
// the mirror (no echo back into the cluster).
func (a *Adaptive) journalRemote(kind string, v any) {
	if a.store == nil {
		return
	}
	if err := a.store.Append(kind, v); err != nil {
		a.journalErrors.Add(1)
	}
}

// JournalErrors returns the count of appends lost to disk faults.
func (a *Adaptive) JournalErrors() uint64 { return a.journalErrors.Load() }

// Restored returns what Attach recovered into the components.
func (a *Adaptive) Restored() RestoreSummary { return a.restored }

func (a *Adaptive) applySnapshot(snap *stateSnapshot) {
	now := a.c.Clock()
	if a.c.Blocks != nil {
		for _, e := range snap.Blocks {
			if !e.Permanent && !e.Expiry.IsZero() && !now.Before(e.Expiry) {
				a.restored.ExpiredBlocks++
				continue
			}
			a.c.Blocks.BlockUntil(e.Addr, e.Expiry)
			a.restored.Blocks++
		}
	}
	if a.c.Threat != nil && snap.Threat != nil {
		if level, err := ids.ParseLevel(snap.Threat.Level); err == nil {
			a.c.Threat.Restore(level, snap.Threat.History)
			a.restored.ThreatLevel = level.String()
		}
	}
	if a.c.Counters != nil {
		for key, series := range snap.Counters {
			for _, at := range series {
				a.c.Counters.RestoreEvent(key, at)
				a.restored.CounterEvents++
			}
		}
	}
	if a.c.Groups != nil {
		for group, members := range snap.Groups {
			for _, m := range members {
				a.c.Groups.Add(group, m)
				a.restored.GroupMembers++
			}
		}
	}
	if a.c.Scorer != nil {
		for _, ev := range snap.Scores {
			if a.c.Scorer.RestoreScore(ev) {
				a.restored.Scores++
			}
		}
		for _, cp := range snap.Profiles {
			if a.c.Scorer.ApplyProfile(cp) {
				a.restored.Profiles++
			}
		}
	}
}

// applyRecord replays one WAL record. Unknown kinds are skipped (a
// newer version may have written them); malformed payloads in a valid
// frame are an error — the CRC said these bytes are what we wrote.
func (a *Adaptive) applyRecord(rec Record) error {
	switch rec.Kind {
	case KindBlock:
		if a.c.Blocks == nil {
			return nil
		}
		var ev netblock.Event
		if err := json.Unmarshal(rec.Data, &ev); err != nil {
			return fmt.Errorf("statestore: record %d (%s): %w", rec.Seq, rec.Kind, err)
		}
		switch {
		case ev.Unblock:
			a.c.Blocks.Unblock(ev.Addr)
		case !ev.Expiry.IsZero() && !a.c.Clock().Before(ev.Expiry):
			a.restored.ExpiredBlocks++
		default:
			a.c.Blocks.BlockUntil(ev.Addr, ev.Expiry)
			a.restored.Blocks++
		}
	case KindThreat:
		if a.c.Threat == nil {
			return nil
		}
		var tr ids.Transition
		if err := json.Unmarshal(rec.Data, &tr); err != nil {
			return fmt.Errorf("statestore: record %d (%s): %w", rec.Seq, rec.Kind, err)
		}
		history := append(a.c.Threat.History(), tr)
		a.c.Threat.Restore(tr.To, history)
		a.restored.ThreatLevel = tr.To.String()
	case KindCounter:
		if a.c.Counters == nil {
			return nil
		}
		var ev conditions.CounterEvent
		if err := json.Unmarshal(rec.Data, &ev); err != nil {
			return fmt.Errorf("statestore: record %d (%s): %w", rec.Seq, rec.Kind, err)
		}
		if ev.Reset {
			a.c.Counters.Reset(ev.Key)
		} else {
			a.c.Counters.RestoreEvent(ev.Key, ev.At)
			a.restored.CounterEvents++
		}
	case KindGroup:
		if a.c.Groups == nil {
			return nil
		}
		var ev groups.Event
		if err := json.Unmarshal(rec.Data, &ev); err != nil {
			return fmt.Errorf("statestore: record %d (%s): %w", rec.Seq, rec.Kind, err)
		}
		if ev.Remove {
			a.c.Groups.Remove(ev.Group, ev.Member)
		} else {
			a.c.Groups.Add(ev.Group, ev.Member)
			a.restored.GroupMembers++
		}
	case KindScore:
		if a.c.Scorer == nil {
			return nil
		}
		var ev adaptive.ScoreEvent
		if err := json.Unmarshal(rec.Data, &ev); err != nil {
			return fmt.Errorf("statestore: record %d (%s): %w", rec.Seq, rec.Kind, err)
		}
		if a.c.Scorer.ApplyScore(ev) {
			a.restored.Scores++
		}
	case KindProfile:
		if a.c.Scorer == nil {
			return nil
		}
		var cp adaptive.ProfileCheckpoint
		if err := json.Unmarshal(rec.Data, &cp); err != nil {
			return fmt.Errorf("statestore: record %d (%s): %w", rec.Seq, rec.Kind, err)
		}
		if a.c.Scorer.ApplyProfile(cp) {
			a.restored.Profiles++
		}
	}
	return nil
}

// ApplyRemote merges one record replicated from another node into the
// live components and reports whether local state changed. Merge rules
// (DESIGN.md "Cluster replication"):
//
//   - blocks: the later deadline wins (permanent counts as latest);
//     already-expired remote blocks are dropped; unblocks apply as-is.
//   - threat: max-wins — the level only rises; de-escalation stays a
//     local decision.
//   - counters: additive — every event lands in the sliding window.
//   - groups: adds and removes apply as sent (add-heavy blacklists
//     converge; concurrent add/remove resolves by arrival order).
//   - scores: max-wins on the score, additive on the sample delta —
//     evidence against a source accumulates across the fleet, and a
//     merged score past the block threshold blocks locally.
//   - profiles: the better-trained checkpoint wins outright.
//
// Changed state is journaled locally (so it survives a restart) but
// never echoed to the mirror — that is the replication loop-breaker.
// A malformed payload is an error; the caller counts it against the
// sending peer. Unknown kinds are skipped (a newer node may send
// them).
func (a *Adaptive) ApplyRemote(rec Record) (bool, error) {
	switch rec.Kind {
	case KindBlock:
		if a.c.Blocks == nil {
			return false, nil
		}
		var ev netblock.Event
		if err := json.Unmarshal(rec.Data, &ev); err != nil {
			return false, fmt.Errorf("statestore: remote %s record: %w", rec.Kind, err)
		}
		if !ev.Unblock && !ev.Expiry.IsZero() && !a.c.Clock().Before(ev.Expiry) {
			return false, nil // arrived after its own deadline
		}
		if !a.c.Blocks.ApplyEvent(ev) {
			return false, nil
		}
		a.journalRemote(KindBlock, ev)
		return true, nil
	case KindThreat:
		if a.c.Threat == nil {
			return false, nil
		}
		var tr ids.Transition
		if err := json.Unmarshal(rec.Data, &tr); err != nil {
			return false, fmt.Errorf("statestore: remote %s record: %w", rec.Kind, err)
		}
		merged, ok := a.c.Threat.Merge(tr)
		if !ok {
			return false, nil
		}
		a.journalRemote(KindThreat, merged)
		return true, nil
	case KindCounter:
		if a.c.Counters == nil {
			return false, nil
		}
		var ev conditions.CounterEvent
		if err := json.Unmarshal(rec.Data, &ev); err != nil {
			return false, fmt.Errorf("statestore: remote %s record: %w", rec.Kind, err)
		}
		if ev.Reset {
			a.c.Counters.Reset(ev.Key)
		} else {
			a.c.Counters.RestoreEvent(ev.Key, ev.At)
		}
		a.journalRemote(KindCounter, ev)
		return true, nil
	case KindGroup:
		if a.c.Groups == nil {
			return false, nil
		}
		var ev groups.Event
		if err := json.Unmarshal(rec.Data, &ev); err != nil {
			return false, fmt.Errorf("statestore: remote %s record: %w", rec.Kind, err)
		}
		if !a.c.Groups.ApplyEvent(ev) {
			return false, nil
		}
		a.journalRemote(KindGroup, ev)
		return true, nil
	case KindScore:
		if a.c.Scorer == nil {
			return false, nil
		}
		var ev adaptive.ScoreEvent
		if err := json.Unmarshal(rec.Data, &ev); err != nil {
			return false, fmt.Errorf("statestore: remote %s record: %w", rec.Kind, err)
		}
		if !a.c.Scorer.ApplyScore(ev) {
			return false, nil
		}
		a.journalRemote(KindScore, ev)
		return true, nil
	case KindProfile:
		if a.c.Scorer == nil {
			return false, nil
		}
		var cp adaptive.ProfileCheckpoint
		if err := json.Unmarshal(rec.Data, &cp); err != nil {
			return false, fmt.Errorf("statestore: remote %s record: %w", rec.Kind, err)
		}
		if !a.c.Scorer.ApplyProfile(cp) {
			return false, nil
		}
		a.journalRemote(KindProfile, cp)
		return true, nil
	}
	return false, nil
}

// StateSnapshot marshals the full live adaptive state — what a node
// sends to a peer that fell behind the replication log horizon.
func (a *Adaptive) StateSnapshot() ([]byte, error) { return a.snapshot() }

// ApplyRemoteSnapshot merges a peer's full state snapshot using the
// same rules as ApplyRemote. Counters are NOT merged from snapshots
// (replaying a full event series would double-count); they replicate
// incrementally only. Score entries merge max-wins on both fields for
// the same reason — a snapshot carries totals, so the additive delta
// rule would double-count evidence. Returns how many mutations
// changed local state.
func (a *Adaptive) ApplyRemoteSnapshot(data []byte) (int, error) {
	var snap stateSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return 0, fmt.Errorf("statestore: remote snapshot: %w", err)
	}
	applied := 0
	now := a.c.Clock()
	if a.c.Blocks != nil {
		for _, e := range snap.Blocks {
			if !e.Permanent && !e.Expiry.IsZero() && !now.Before(e.Expiry) {
				continue
			}
			ev := netblock.Event{Addr: e.Addr, Expiry: e.Expiry}
			if a.c.Blocks.ApplyEvent(ev) {
				a.journalRemote(KindBlock, ev)
				applied++
			}
		}
	}
	if a.c.Threat != nil && snap.Threat != nil {
		if level, err := ids.ParseLevel(snap.Threat.Level); err == nil {
			tr := ids.Transition{To: level, At: now}
			if len(snap.Threat.History) > 0 {
				tr.At = snap.Threat.History[len(snap.Threat.History)-1].At
			}
			if merged, ok := a.c.Threat.Merge(tr); ok {
				a.journalRemote(KindThreat, merged)
				applied++
			}
		}
	}
	if a.c.Groups != nil {
		for group, members := range snap.Groups {
			for _, m := range members {
				ev := groups.Event{Group: group, Member: m}
				if a.c.Groups.ApplyEvent(ev) {
					a.journalRemote(KindGroup, ev)
					applied++
				}
			}
		}
	}
	if a.c.Scorer != nil {
		for _, ev := range snap.Scores {
			if a.c.Scorer.RestoreScore(ev) {
				a.journalRemote(KindScore, ev)
				applied++
			}
		}
		for _, cp := range snap.Profiles {
			if a.c.Scorer.ApplyProfile(cp) {
				a.journalRemote(KindProfile, cp)
				applied++
			}
		}
	}
	return applied, nil
}

// snapshot gathers the live component state for compaction.
func (a *Adaptive) snapshot() ([]byte, error) {
	var snap stateSnapshot
	if a.c.Blocks != nil {
		snap.Blocks = a.c.Blocks.Entries()
	}
	if a.c.Threat != nil {
		snap.Threat = &threatState{
			Level:   a.c.Threat.Level().String(),
			History: a.c.Threat.History(),
		}
	}
	if a.c.Counters != nil {
		snap.Counters = a.c.Counters.Dump()
	}
	if a.c.Groups != nil {
		snap.Groups = make(map[string][]string)
		for _, g := range a.c.Groups.Groups() {
			snap.Groups[g] = a.c.Groups.Members(g)
		}
	}
	if a.c.Scorer != nil {
		snap.Scores = a.c.Scorer.Scores()
		snap.Profiles = a.c.Scorer.Profiles()
	}
	return json.Marshal(snap)
}
