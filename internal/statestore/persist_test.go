package statestore

import (
	"testing"
	"time"

	"gaaapi/internal/conditions"
	"gaaapi/internal/groups"
	"gaaapi/internal/ids"
	"gaaapi/internal/netblock"
)

// fixedClock returns a settable deterministic clock.
type fixedClock struct{ now time.Time }

func (c *fixedClock) Now() time.Time { return c.now }

func components(clock func() time.Time) Components {
	return Components{
		Blocks:   netblock.NewSet(netblock.WithClock(clock)),
		Threat:   ids.NewManager(ids.Low),
		Counters: conditions.NewCounters(clock),
		Groups:   groups.NewStore(),
		Clock:    clock,
	}
}

func attach(t *testing.T, dir string, c Components) (*Store, *Adaptive) {
	t.Helper()
	s, err := Open(dir, Options{Fsync: FsyncAlways, Clock: c.Clock})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	a, err := Attach(s, c)
	if err != nil {
		t.Fatal(err)
	}
	return s, a
}

func TestRecoveryRestoresAdaptiveState(t *testing.T) {
	clock := &fixedClock{now: time.Date(2003, 5, 1, 12, 0, 0, 0, time.UTC)}
	dir := t.TempDir()

	c1 := components(clock.Now)
	_, a1 := attach(t, dir, c1)
	if a1.Restored() != (RestoreSummary{}) {
		t.Fatalf("fresh attach restored %+v", a1.Restored())
	}

	// Mutate everything the paper's feedback loop touches.
	expiry := clock.now.Add(10 * time.Minute)
	c1.Blocks.Block("10.0.0.1", 10*time.Minute)
	c1.Blocks.Block("192.168.0.0/24", 0) // permanent
	c1.Threat.Set(ids.Medium)
	c1.Threat.Set(ids.High)
	c1.Counters.Add("login-fail:alice")
	c1.Counters.Add("login-fail:alice")
	c1.Groups.Add("BadGuys", "10.0.0.1")

	// Reopen the same directory WITHOUT Close: the process was killed.
	clock.now = clock.now.Add(time.Minute)
	c2 := components(clock.Now)
	_, a2 := attach(t, dir, c2)
	sum := a2.Restored()

	if sum.Blocks != 2 {
		t.Fatalf("restored %d blocks, want 2", sum.Blocks)
	}
	if !c2.Blocks.Blocked("10.0.0.1") || !c2.Blocks.Blocked("192.168.0.55") {
		t.Fatal("restored block set does not enforce the original blocks")
	}
	entries := c2.Blocks.Entries()
	var timed *netblock.Entry
	for i := range entries {
		if entries[i].Addr == "10.0.0.1" {
			timed = &entries[i]
		}
	}
	if timed == nil || !timed.Expiry.Equal(expiry) {
		t.Fatalf("timed block restored with expiry %+v, want the original %v", timed, expiry)
	}
	if sum.ThreatLevel != "high" || c2.Threat.Level() != ids.High {
		t.Fatalf("threat restored to %q/%v, want high", sum.ThreatLevel, c2.Threat.Level())
	}
	if h := c2.Threat.History(); len(h) != 2 || h[0].To != ids.Medium || h[1].To != ids.High {
		t.Fatalf("escalation history not restored: %+v", h)
	}
	if sum.CounterEvents != 2 || c2.Counters.CountSince("login-fail:alice", time.Hour) != 2 {
		t.Fatalf("lockout counters not restored: summary=%d count=%d",
			sum.CounterEvents, c2.Counters.CountSince("login-fail:alice", time.Hour))
	}
	if sum.GroupMembers != 1 || !c2.Groups.Contains("BadGuys", "10.0.0.1") {
		t.Fatal("blacklist group not restored")
	}
}

func TestRecoveryDropsExpiredBlocks(t *testing.T) {
	clock := &fixedClock{now: time.Date(2003, 5, 1, 12, 0, 0, 0, time.UTC)}
	dir := t.TempDir()
	c1 := components(clock.Now)
	attach(t, dir, c1)
	c1.Blocks.Block("10.0.0.1", time.Minute)
	c1.Blocks.Block("10.0.0.2", time.Hour)

	clock.now = clock.now.Add(30 * time.Minute) // first block expired
	c2 := components(clock.Now)
	_, a2 := attach(t, dir, c2)
	sum := a2.Restored()
	if sum.Blocks != 1 || sum.ExpiredBlocks != 1 {
		t.Fatalf("restored %d blocks / %d expired, want 1/1", sum.Blocks, sum.ExpiredBlocks)
	}
	if c2.Blocks.Blocked("10.0.0.1") {
		t.Fatal("expired block came back")
	}
	if !c2.Blocks.Blocked("10.0.0.2") {
		t.Fatal("live block lost")
	}
}

func TestUnblockJournaled(t *testing.T) {
	clock := &fixedClock{now: time.Date(2003, 5, 1, 12, 0, 0, 0, time.UTC)}
	dir := t.TempDir()
	c1 := components(clock.Now)
	attach(t, dir, c1)
	c1.Blocks.Block("10.0.0.1", time.Hour)
	c1.Blocks.Unblock("10.0.0.1")
	c1.Groups.Add("BadGuys", "x")
	c1.Groups.Remove("BadGuys", "x")

	c2 := components(clock.Now)
	attach(t, dir, c2)
	if c2.Blocks.Blocked("10.0.0.1") {
		t.Fatal("unblocked address restored as blocked")
	}
	if c2.Groups.Contains("BadGuys", "x") {
		t.Fatal("removed member restored")
	}
}

func TestCompactionRoundTripsState(t *testing.T) {
	clock := &fixedClock{now: time.Date(2003, 5, 1, 12, 0, 0, 0, time.UTC)}
	dir := t.TempDir()
	c1 := components(clock.Now)
	s1, _ := attach(t, dir, c1)
	c1.Blocks.Block("10.0.0.1", time.Hour)
	c1.Threat.Set(ids.High)
	c1.Counters.Add("login-fail:bob")
	c1.Groups.Add("BadGuys", "10.0.0.1")
	if err := s1.Compact(); err != nil {
		t.Fatal(err)
	}
	// Post-compaction mutations land in the fresh WAL segment.
	c1.Groups.Add("BadGuys", "10.0.0.2")

	c2 := components(clock.Now)
	s2, a2 := attach(t, dir, c2)
	if rec := s2.Recovery(); !rec.SnapshotLoaded {
		t.Fatalf("no snapshot after compaction: %+v", rec)
	}
	sum := a2.Restored()
	if sum.Blocks != 1 || sum.GroupMembers != 2 || sum.CounterEvents != 1 || sum.ThreatLevel != "high" {
		t.Fatalf("snapshot+tail restore = %+v", sum)
	}
	if !c2.Groups.Contains("BadGuys", "10.0.0.2") {
		t.Fatal("post-compaction mutation lost")
	}
}

func TestReplayIdempotentAcrossDuplicates(t *testing.T) {
	// Records duplicated across a compaction race (in both snapshot and
	// WAL) must not double-apply: Block updates in place, group Add is
	// a set, counters are the conservative direction.
	clock := &fixedClock{now: time.Date(2003, 5, 1, 12, 0, 0, 0, time.UTC)}
	dir := t.TempDir()
	c1 := components(clock.Now)
	s1, _ := attach(t, dir, c1)
	c1.Blocks.Block("10.0.0.1", time.Hour)
	c1.Groups.Add("BadGuys", "10.0.0.1")
	if err := s1.Compact(); err != nil {
		t.Fatal(err)
	}
	// Force the duplicate shape: a snapshot is present AND the original
	// records are still in a WAL segment. Re-journal the same mutations.
	c1.Blocks.Block("10.0.0.1", time.Hour)
	c1.Groups.Add("BadGuys", "10.0.0.1") // no-op: not journaled again

	c2 := components(clock.Now)
	attach(t, dir, c2)
	if got := c2.Blocks.Len(); got != 1 {
		t.Fatalf("block set has %d entries after duplicate replay, want 1", got)
	}
	if got := c2.Groups.Len("BadGuys"); got != 1 {
		t.Fatalf("BadGuys has %d members after duplicate replay, want 1", got)
	}
}

func TestJournalErrorsCountedNotFatal(t *testing.T) {
	dir := t.TempDir()
	ffs := &faultyFS{FS: OS}
	s, err := Open(dir, Options{Fsync: FsyncNever, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := components(time.Now)
	a, err := Attach(s, c)
	if err != nil {
		t.Fatal(err)
	}
	ffs.tearNext = true
	c.Blocks.Block("10.0.0.1", time.Hour) // journal append fails underneath
	if a.JournalErrors() != 1 {
		t.Fatalf("JournalErrors = %d, want 1", a.JournalErrors())
	}
	if !c.Blocks.Blocked("10.0.0.1") {
		t.Fatal("in-memory enforcement lost on journal failure")
	}
}

func TestAttachRejectsCorruptRecordPayload(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("block", "not-an-event-object"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := Attach(re, components(time.Now)); err == nil {
		t.Fatal("Attach accepted a CRC-valid record with a malformed payload")
	}
}

func TestUnknownRecordKindSkipped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("future-kind", map[string]string{"x": "y"}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := Attach(re, components(time.Now)); err != nil {
		t.Fatalf("unknown kind should be skipped, got %v", err)
	}
}
