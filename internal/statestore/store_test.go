package statestore

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

type blockPayload struct {
	Addr string `json:"addr"`
}

func openStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func appendN(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Append("block", blockPayload{Addr: "10.0.0.1"}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	recs := []Record{
		{Seq: 1, Kind: "block", Data: json.RawMessage(`{"addr":"10.0.0.1"}`)},
		{Seq: 2, Kind: "threat", Data: json.RawMessage(`{"to":2}`)},
		{Seq: 3, Kind: "empty"},
	}
	var buf bytes.Buffer
	for _, r := range recs {
		frame, err := encodeFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
	}
	res := scanWAL(buf.Bytes())
	if res.droppedBytes != 0 || res.droppedReason != "" {
		t.Fatalf("clean WAL dropped %d bytes (%s)", res.droppedBytes, res.droppedReason)
	}
	if len(res.records) != len(recs) {
		t.Fatalf("got %d records, want %d", len(res.records), len(recs))
	}
	for i, r := range res.records {
		if r.Seq != recs[i].Seq || r.Kind != recs[i].Kind {
			t.Fatalf("record %d = %+v, want %+v", i, r, recs[i])
		}
	}
	if res.validLen != int64(buf.Len()) {
		t.Fatalf("validLen %d, want %d", res.validLen, buf.Len())
	}
}

func TestFrameLimit(t *testing.T) {
	big := Record{Seq: 1, Kind: "x", Data: json.RawMessage(`"` + strings.Repeat("a", maxRecordSize) + `"`)}
	if _, err := encodeFrame(big); err == nil {
		t.Fatal("oversized record encoded without error")
	}
}

func TestScanStopsAtTornFrame(t *testing.T) {
	good, err := encodeFrame(Record{Seq: 1, Kind: "block"})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		tail   []byte
		reason string
	}{
		{"torn header", []byte{1, 2, 3}, "torn frame header"},
		{"torn payload", append(binary.LittleEndian.AppendUint32(binary.LittleEndian.AppendUint32(nil, 100), 0), 'x'), "torn frame payload"},
		{"length overflow", bytes.Repeat([]byte{0xFF}, 16), "exceeds limit"},
	} {
		data := append(append([]byte{}, good...), tc.tail...)
		res := scanWAL(data)
		if len(res.records) != 1 {
			t.Errorf("%s: replayed %d records, want 1", tc.name, len(res.records))
		}
		if res.droppedBytes != int64(len(tc.tail)) {
			t.Errorf("%s: dropped %d bytes, want %d", tc.name, res.droppedBytes, len(tc.tail))
		}
		if !strings.Contains(res.droppedReason, tc.reason) {
			t.Errorf("%s: reason %q, want substring %q", tc.name, res.droppedReason, tc.reason)
		}
	}
}

func TestOpenEmptyDirectory(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncNever})
	if rec := s.Recovery(); rec.SnapshotLoaded || rec.Replayed != 0 || rec.DroppedBytes != 0 {
		t.Fatalf("fresh dir recovery = %+v, want zeroes", rec)
	}
	if _, ok := s.SnapshotData(); ok {
		t.Fatal("fresh dir reported a snapshot")
	}
	appendN(t, s, 1)
}

func TestAppendAndReplay(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncAlways})
	for i, kind := range []string{"block", "threat", "count", "group"} {
		if err := s.Append(kind, map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen WITHOUT closing: models kill -9 (FsyncAlways means every
	// record is on stable storage already).
	re := openStore(t, dir, Options{Fsync: FsyncNever})
	tail := re.Tail()
	if len(tail) != 4 {
		t.Fatalf("replayed %d records, want 4", len(tail))
	}
	for i, rec := range tail {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d", i, rec.Seq, i+1)
		}
	}
	if st := re.Stats(); st.LastSeq != 4 {
		t.Fatalf("LastSeq %d, want 4", st.LastSeq)
	}
	// New appends continue the sequence past the replayed records.
	if err := re.Append("block", blockPayload{}); err != nil {
		t.Fatal(err)
	}
	if st := re.Stats(); st.LastSeq != 5 {
		t.Fatalf("LastSeq after append %d, want 5", st.LastSeq)
	}
}

func TestTornTailQuarantinedAndTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncAlways})
	appendN(t, s, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last frame: drop its final 4 bytes, as a crash mid-write
	// would.
	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}

	re := openStore(t, dir, Options{})
	rec := re.Recovery()
	if rec.Replayed != 2 {
		t.Fatalf("replayed %d, want 2 (longest valid prefix)", rec.Replayed)
	}
	if rec.DroppedBytes == 0 || rec.DroppedReason == "" {
		t.Fatalf("torn tail not reported: %+v", rec)
	}
	if rec.QuarantineFile == "" {
		t.Fatal("torn tail not quarantined")
	}
	quarantined, err := os.ReadFile(rec.QuarantineFile)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(quarantined)) != rec.DroppedBytes {
		t.Fatalf("quarantine holds %d bytes, dropped %d", len(quarantined), rec.DroppedBytes)
	}
	// The tail must be truncated away so new appends frame cleanly.
	if err := re.Append("block", blockPayload{Addr: "10.9.9.9"}); err != nil {
		t.Fatal(err)
	}
	re.Close()

	again := openStore(t, dir, Options{})
	if got := again.Recovery(); got.Replayed != 3 || got.DroppedBytes != 0 {
		t.Fatalf("post-repair recovery = %+v, want 3 replayed, 0 dropped", got)
	}
}

func TestCorruptSnapshotQuarantined(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapName), []byte(`{"version":1,"seq":9,"crc32":1,"state":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openStore(t, dir, Options{})
	rec := s.Recovery()
	if !rec.SnapshotQuarantined || rec.SnapshotLoaded {
		t.Fatalf("corrupt snapshot not quarantined: %+v", rec)
	}
	if _, ok := s.SnapshotData(); ok {
		t.Fatal("corrupt snapshot state surfaced")
	}
	if _, err := os.Stat(filepath.Join(dir, snapName)); !os.IsNotExist(err) {
		t.Fatal("corrupt snapshot file not removed")
	}
}

func TestCompactionAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncAlways, SnapshotEvery: -1})
	state := []byte(`{"blocks":[{"addr":"10.0.0.1"}]}`)
	s.SetSnapshotFunc(func() ([]byte, error) { return state, nil })
	appendN(t, s, 5)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Snapshots != 1 {
		t.Fatalf("Snapshots = %d, want 1", st.Snapshots)
	}
	// Post-compaction appends land in the fresh WAL segment.
	appendN(t, s, 2)
	s.Close()

	re := openStore(t, dir, Options{})
	rec := re.Recovery()
	if !rec.SnapshotLoaded || rec.SnapshotSeq != 5 {
		t.Fatalf("recovery = %+v, want snapshot at seq 5", rec)
	}
	raw, ok := re.SnapshotData()
	if !ok || !bytes.Equal(raw, state) {
		t.Fatalf("snapshot state = %s, want %s", raw, state)
	}
	if rec.Replayed != 2 {
		t.Fatalf("replayed %d, want the 2 post-snapshot records", rec.Replayed)
	}
	if tail := re.Tail(); tail[0].Seq != 6 || tail[1].Seq != 7 {
		t.Fatalf("tail seqs = %d,%d want 6,7", tail[0].Seq, tail[1].Seq)
	}
}

func TestCountDrivenCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncNever, SnapshotEvery: 4})
	s.SetSnapshotFunc(func() ([]byte, error) { return []byte(`{}`), nil })
	appendN(t, s, 9)
	if st := s.Stats(); st.Snapshots < 2 {
		t.Fatalf("Snapshots = %d after 9 appends with SnapshotEvery=4, want >= 2", st.Snapshots)
	}
}

func TestDuplicateRecordsAfterCompactionRaceSkipped(t *testing.T) {
	// A crash between a compaction's snapshot write and its WAL cleanup
	// leaves records the snapshot already covers. Simulate: snapshot at
	// seq 3, WAL still holding seqs 1..5.
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncAlways})
	appendN(t, s, 5)
	s.Close()

	state := []byte(`{"covered":true}`)
	sf := snapFile{Version: 1, Seq: 3, CRC: crc32.ChecksumIEEE(state), State: state}
	raw, err := json.Marshal(sf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re := openStore(t, dir, Options{})
	rec := re.Recovery()
	if !rec.SnapshotLoaded || rec.SnapshotSeq != 3 {
		t.Fatalf("recovery = %+v, want snapshot seq 3", rec)
	}
	if rec.SkippedDuplicates != 3 {
		t.Fatalf("skipped %d duplicates, want 3 (seqs 1..3)", rec.SkippedDuplicates)
	}
	if rec.Replayed != 2 {
		t.Fatalf("replayed %d, want 2 (seqs 4,5)", rec.Replayed)
	}
}

func TestSnapshotNewerThanWAL(t *testing.T) {
	// Snapshot seq beyond every WAL record: nothing replays, and the
	// next append continues past the snapshot's sequence.
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncAlways})
	appendN(t, s, 2)
	s.Close()

	state := []byte(`{}`)
	sf := snapFile{Version: 1, Seq: 10, CRC: crc32.ChecksumIEEE(state), State: state}
	raw, _ := json.Marshal(sf)
	if err := os.WriteFile(filepath.Join(dir, snapName), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re := openStore(t, dir, Options{Fsync: FsyncAlways})
	rec := re.Recovery()
	if rec.Replayed != 0 || rec.SkippedDuplicates != 2 {
		t.Fatalf("recovery = %+v, want 0 replayed, 2 skipped", rec)
	}
	if err := re.Append("block", blockPayload{}); err != nil {
		t.Fatal(err)
	}
	if st := re.Stats(); st.LastSeq != 11 {
		t.Fatalf("LastSeq = %d, want 11 (snapshot seq 10 + 1)", st.LastSeq)
	}
}

func TestCrashMidCompactionReplaysPrevSegment(t *testing.T) {
	// A crash after the WAL rotation but before the snapshot lands
	// leaves wal.prev.log; its records must replay before wal.log's.
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncAlways})
	appendN(t, s, 3)
	s.Close()
	if err := os.Rename(filepath.Join(dir, walName), filepath.Join(dir, walPrevName)); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{Fsync: FsyncAlways})
	if rec := s2.Recovery(); rec.Replayed != 3 {
		t.Fatalf("replayed %d from rotated-out segment, want 3", rec.Replayed)
	}
	appendN(t, s2, 1)
	s2.Close()

	s3 := openStore(t, dir, Options{})
	tail := s3.Tail()
	if len(tail) != 4 {
		t.Fatalf("replayed %d across segments, want 4", len(tail))
	}
	for i, rec := range tail {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d seq %d, want %d (prev segment first)", i, rec.Seq, i+1)
		}
	}
}

func TestFsyncPolicies(t *testing.T) {
	t.Run("always counts a sync per append", func(t *testing.T) {
		s := openStore(t, t.TempDir(), Options{Fsync: FsyncAlways})
		appendN(t, s, 3)
		if st := s.Stats(); st.Syncs != 3 {
			t.Fatalf("Syncs = %d, want 3", st.Syncs)
		}
	})
	t.Run("interval syncs on the background tick", func(t *testing.T) {
		s := openStore(t, t.TempDir(), Options{Fsync: FsyncInterval, FsyncInterval: 5 * time.Millisecond})
		appendN(t, s, 3)
		deadline := time.Now().Add(2 * time.Second)
		for {
			if st := s.Stats(); st.Syncs > 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("background fsync never ran")
			}
			time.Sleep(time.Millisecond)
		}
	})
	t.Run("never leaves flushing to close", func(t *testing.T) {
		s := openStore(t, t.TempDir(), Options{Fsync: FsyncNever})
		appendN(t, s, 3)
		if st := s.Stats(); st.Syncs != 0 {
			t.Fatalf("Syncs = %d, want 0 before Close", st.Syncs)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if st := s.Stats(); st.Syncs != 1 {
			t.Fatalf("Syncs = %d after Close, want 1", st.Syncs)
		}
	})
}

func TestTimedCompaction(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{Fsync: FsyncNever, SnapshotEvery: -1, SnapshotInterval: 5 * time.Millisecond})
	s.SetSnapshotFunc(func() ([]byte, error) { return []byte(`{}`), nil })
	appendN(t, s, 2)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st := s.Stats(); st.Snapshots > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("timed compaction never ran")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "Interval": FsyncInterval, "": FsyncInterval, "NEVER": FsyncNever,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
		if got.String() == "" {
			t.Errorf("FsyncPolicy(%v).String() empty", got)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("ParseFsyncPolicy accepted garbage")
	}
}

func TestAppendAfterClose(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{Fsync: FsyncNever})
	s.Close()
	if err := s.Append("block", blockPayload{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact after Close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

func TestAppendUnencodableValue(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{Fsync: FsyncNever})
	if err := s.Append("bad", func() {}); err == nil {
		t.Fatal("func value encoded without error")
	}
	if st := s.Stats(); st.Appends != 0 {
		t.Fatalf("failed append counted: %+v", st)
	}
}

// faultyFS tears exactly one write, then behaves; it lets the test pin
// the self-repair path: a short write must not orphan later records.
type faultyFS struct {
	FS
	tearNext bool
	torn     bool
}

type tearFile struct {
	File
	fs *faultyFS
}

func (f *faultyFS) OpenAppend(name string) (File, error) {
	file, err := f.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &tearFile{File: file, fs: f}, nil
}

func (f *tearFile) Write(p []byte) (int, error) {
	if f.fs.tearNext {
		f.fs.tearNext = false
		f.fs.torn = true
		n := len(p) / 2
		if n > 0 {
			f.File.Write(p[:n])
		}
		return n, errors.New("injected short write")
	}
	return f.File.Write(p)
}

func TestShortWriteSelfRepair(t *testing.T) {
	dir := t.TempDir()
	ffs := &faultyFS{FS: OS}
	s, err := Open(dir, Options{Fsync: FsyncNever, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 2)

	ffs.tearNext = true
	if err := s.Append("block", blockPayload{Addr: "10.0.0.2"}); err == nil {
		t.Fatal("torn append reported success")
	}
	if !ffs.torn {
		t.Fatal("fault never fired")
	}
	if st := s.Stats(); st.AppendErrors != 1 {
		t.Fatalf("AppendErrors = %d, want 1", st.AppendErrors)
	}
	// The next append must truncate the partial frame first, so the
	// record after the fault is NOT orphaned behind a torn frame.
	if err := s.Append("block", blockPayload{Addr: "10.0.0.3"}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	re := openStore(t, dir, Options{})
	rec := re.Recovery()
	if rec.DroppedBytes != 0 {
		t.Fatalf("self-repaired WAL still dropped %d bytes (%s)", rec.DroppedBytes, rec.DroppedReason)
	}
	if rec.Replayed != 3 {
		t.Fatalf("replayed %d, want 3 (2 before fault + 1 after repair)", rec.Replayed)
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncNever, SnapshotEvery: 16})
	s.SetSnapshotFunc(func() ([]byte, error) { return []byte(`{}`), nil })
	const workers, per = 8, 50
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				_ = s.Append("block", blockPayload{Addr: "10.0.0.1"})
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	st := s.Stats()
	if st.Appends != workers*per {
		t.Fatalf("Appends = %d, want %d", st.Appends, workers*per)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything lands either in the snapshot or the WAL tail; reopening
	// must not drop bytes.
	re := openStore(t, dir, Options{})
	if rec := re.Recovery(); rec.DroppedBytes != 0 {
		t.Fatalf("concurrent appends left a torn WAL: %+v", rec)
	}
}
