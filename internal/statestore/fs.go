package statestore

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the narrow filesystem surface the store writes through. It
// exists so fault drills can inject short writes, fsync errors, and
// torn tails (internal/faults wraps it); production code uses OS.
type FS interface {
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Create truncates or creates name for writing.
	Create(name string) (File, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name; removing a missing file is not an error.
	Remove(name string) error
	// Truncate shrinks name to size bytes.
	Truncate(name string, size int64) error
	// MkdirAll creates the directory path.
	MkdirAll(dir string) error
	// SyncDir flushes directory metadata (renames) to stable storage.
	// Implementations may make it a no-op where unsupported.
	SyncDir(dir string) error
}

// File is a writable store file.
type File interface {
	io.Writer
	io.Closer
	// Sync flushes written data to stable storage.
	Sync() error
}

// OS is the production FS backed by package os.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error {
	err := os.Remove(name)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	// Directory fsync is best-effort: some platforms reject it.
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return err
	}
	return nil
}
