package statestore

import (
	"encoding/json"
	"testing"
	"time"

	"gaaapi/internal/ids"
	"gaaapi/internal/ids/adaptive"
	"gaaapi/internal/netblock"
)

func scorerComponents(clock func() time.Time) Components {
	c := Components{
		Blocks: netblock.NewSet(netblock.WithClock(clock)),
		Threat: ids.NewManager(ids.Low),
		Clock:  clock,
	}
	cfg := adaptive.Defaults()
	cfg.Synchronous = true
	cfg.MinSamples = 4
	c.Scorer = adaptive.New(cfg, c.Threat, c.Blocks)
	return c
}

// feedAttack pushes high-severity samples until the engine journals.
func feedAttack(c Components, source string, n int, start time.Time) {
	for i := 0; i < n; i++ {
		c.Scorer.ObserveRequest(adaptive.Sample{
			Time:   start.Add(time.Duration(i) * 50 * time.Millisecond),
			Source: source, Path: "/cgi-bin/probe", Query: "x=%00",
			InputLen: 800, Denied: true, Severity: ids.SevHigh,
		})
	}
}

func TestScoreAndProfileRecordsPersistAcrossRestart(t *testing.T) {
	clock := &fixedClock{now: time.Date(2003, 5, 1, 12, 0, 0, 0, time.UTC)}
	dir := t.TempDir()

	c1 := scorerComponents(clock.Now)
	attach(t, dir, c1)

	// Train a resource past a checkpoint and score up an attacker.
	for i := 0; i < 200; i++ {
		c1.Scorer.ObserveRequest(adaptive.Sample{
			Time:   clock.now.Add(time.Duration(i) * time.Second),
			Source: "10.0.0.1", Path: "/index.html", InputLen: 20,
		})
	}
	feedAttack(c1, "203.0.113.99", 12, clock.now.Add(time.Hour))
	wantScore := c1.Scorer.SourceScore("203.0.113.99")
	if wantScore == 0 {
		t.Fatal("attack produced no score")
	}

	// Kill and restart: the score evidence and trained profile return.
	c2 := scorerComponents(clock.Now)
	_, a2 := attach(t, dir, c2)
	sum := a2.Restored()
	if sum.Scores == 0 {
		t.Fatalf("no score entries restored: %+v", sum)
	}
	if sum.Profiles == 0 {
		t.Fatalf("no profiles restored: %+v", sum)
	}
	if got := c2.Scorer.SourceScore("203.0.113.99"); got < wantScore-0.75 {
		t.Fatalf("restored attacker score %v, origin journaled around %v", got, wantScore)
	}
	profiles := c2.Scorer.Profiles()
	if len(profiles) == 0 || profiles[0].Resource != "/index.html" {
		t.Fatalf("trained profile not restored: %+v", profiles)
	}
}

func TestMirrorSeesScoreRecords(t *testing.T) {
	clock := &fixedClock{now: time.Date(2003, 5, 1, 12, 0, 0, 0, time.UTC)}
	c := scorerComponents(clock.Now)
	a, err := Attach(nil, c)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	a.SetMirror(func(kind string, data json.RawMessage) {
		if len(data) == 0 {
			t.Fatalf("mirror got empty payload for %s", kind)
		}
		kinds[kind]++
	})
	for i := 0; i < 200; i++ {
		c.Scorer.ObserveRequest(adaptive.Sample{
			Time:   clock.now.Add(time.Duration(i) * time.Second),
			Source: "10.0.0.1", Path: "/index.html", InputLen: 20,
		})
	}
	feedAttack(c, "203.0.113.99", 12, clock.now.Add(time.Hour))
	if kinds[KindScore] == 0 {
		t.Fatalf("mirror saw no %s records: %v", KindScore, kinds)
	}
	if kinds[KindProfile] == 0 {
		t.Fatalf("mirror saw no %s records: %v", KindProfile, kinds)
	}
}

func TestApplyRemoteScoreMergesAndBlocks(t *testing.T) {
	clock := &fixedClock{now: time.Date(2003, 5, 1, 12, 0, 0, 0, time.UTC)}
	c := scorerComponents(clock.Now)
	a, err := Attach(nil, c)
	if err != nil {
		t.Fatal(err)
	}
	var mirrored int
	a.SetMirror(func(kind string, data json.RawMessage) {
		// A remote score merge may legitimately trigger a LOCAL block,
		// which mirrors as a block record; the score record itself must
		// not echo.
		if kind == KindScore || kind == KindProfile {
			mirrored++
		}
	})

	ev, _ := json.Marshal(adaptive.ScoreEvent{
		Source: "203.0.113.99", Score: 2.5, Samples: 10, At: clock.now,
	})
	changed, err := a.ApplyRemote(Record{Seq: 1, Kind: KindScore, Data: ev})
	if err != nil || !changed {
		t.Fatalf("ApplyRemote(score) = %v, %v", changed, err)
	}
	if mirrored != 0 {
		t.Fatal("remote score record echoed to the mirror")
	}
	// Merged evidence (score 2.5 >= BlockScore, 10 samples >= floor)
	// must enforce locally even though this node never saw the source.
	if !c.Blocks.Blocked("203.0.113.99") {
		t.Fatal("merged remote evidence did not block the source")
	}

	cp, _ := json.Marshal(adaptive.ProfileCheckpoint{
		Resource: "/login", N: 50, MeanLen: 24, M2Len: 100,
		Classes: []float64{0.7, 0, 0.1, 0.2, 0, 0, 0}, At: clock.now,
	})
	changed, err = a.ApplyRemote(Record{Seq: 2, Kind: KindProfile, Data: cp})
	if err != nil || !changed {
		t.Fatalf("ApplyRemote(profile) = %v, %v", changed, err)
	}
	// Re-applying the same checkpoint is a no-op (max-N wins).
	changed, err = a.ApplyRemote(Record{Seq: 3, Kind: KindProfile, Data: cp})
	if err != nil || changed {
		t.Fatalf("duplicate profile checkpoint reported change: %v, %v", changed, err)
	}
}

func TestSnapshotRoundTripMergesScores(t *testing.T) {
	clock := &fixedClock{now: time.Date(2003, 5, 1, 12, 0, 0, 0, time.UTC)}
	origin := scorerComponents(clock.Now)
	ao, err := Attach(nil, origin)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		origin.Scorer.ObserveRequest(adaptive.Sample{
			Time:   clock.now.Add(time.Duration(i) * time.Second),
			Source: "10.0.0.1", Path: "/index.html", InputLen: 20,
		})
	}
	feedAttack(origin, "203.0.113.99", 12, clock.now.Add(time.Hour))
	snap, err := ao.StateSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	follower := scorerComponents(clock.Now)
	af, err := Attach(nil, follower)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := af.ApplyRemoteSnapshot(snap)
	if err != nil || applied == 0 {
		t.Fatalf("ApplyRemoteSnapshot = %d, %v", applied, err)
	}
	if follower.Scorer.SourceScore("203.0.113.99") == 0 {
		t.Fatal("snapshot did not carry the attacker score")
	}
	// Idempotent: re-applying the same snapshot merges nothing new
	// (max-wins on both score and samples — no double-counted evidence).
	applied, err = af.ApplyRemoteSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range follower.Scorer.Scores() {
		for _, orig := range origin.Scorer.Scores() {
			if ev.Source == orig.Source && ev.Samples > orig.Samples {
				t.Fatalf("snapshot re-merge inflated %s evidence: %d > %d",
					ev.Source, ev.Samples, orig.Samples)
			}
		}
	}
	_ = applied
}
