package statestore

import (
	"errors"
	"strings"
	"testing"
	"time"

	"gaaapi/internal/ids"
)

var errInjected = errors.New("injected")

// brokenFS fails selected operations; everything else passes through.
type brokenFS struct {
	FS
	failCreate bool
	failRename bool
	failSync   bool
	failDirDir bool
}

type brokenFile struct {
	File
	fs *brokenFS
}

func (f *brokenFS) OpenAppend(name string) (File, error) {
	file, err := f.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &brokenFile{File: file, fs: f}, nil
}

func (f *brokenFS) Create(name string) (File, error) {
	if f.failCreate {
		return nil, errInjected
	}
	file, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &brokenFile{File: file, fs: f}, nil
}

func (f *brokenFS) Rename(oldname, newname string) error {
	// failRename targets only the WAL rotation; the snapshot's
	// tmp-to-final rename stays healthy.
	if f.failRename && strings.HasSuffix(newname, walPrevName) {
		return errInjected
	}
	return f.FS.Rename(oldname, newname)
}

func (f *brokenFS) SyncDir(dir string) error {
	if f.failDirDir {
		return errInjected
	}
	return f.FS.SyncDir(dir)
}

func (f *brokenFile) Sync() error {
	if f.fs.failSync {
		return errInjected
	}
	return f.File.Sync()
}

func TestCompactSnapshotFuncError(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{Fsync: FsyncNever, SnapshotEvery: -1})
	s.SetSnapshotFunc(func() ([]byte, error) { return nil, errInjected })
	appendN(t, s, 1)
	if err := s.Compact(); !errors.Is(err, errInjected) {
		t.Fatalf("Compact = %v, want injected error", err)
	}
	if st := s.Stats(); st.SnapshotErrors != 1 {
		t.Fatalf("SnapshotErrors = %d, want 1", st.SnapshotErrors)
	}
	// The store must keep journaling after a failed compaction.
	appendN(t, s, 1)
}

func TestCompactWithoutSnapshotFunc(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{Fsync: FsyncNever})
	if err := s.Compact(); err == nil {
		t.Fatal("Compact without a snapshot func succeeded")
	}
}

func TestCompactSnapshotWriteError(t *testing.T) {
	dir := t.TempDir()
	bfs := &brokenFS{FS: OS}
	s, err := Open(dir, Options{Fsync: FsyncNever, FS: bfs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetSnapshotFunc(func() ([]byte, error) { return []byte(`{}`), nil })
	appendN(t, s, 2)

	bfs.failCreate = true
	if err := s.Compact(); !errors.Is(err, errInjected) {
		t.Fatalf("Compact with failing Create = %v, want injected", err)
	}
	bfs.failCreate = false

	bfs.failSync = true
	if err := s.Compact(); !errors.Is(err, errInjected) {
		t.Fatalf("Compact with failing file Sync = %v, want injected", err)
	}
	bfs.failSync = false

	bfs.failDirDir = true
	if err := s.Compact(); !errors.Is(err, errInjected) {
		t.Fatalf("Compact with failing SyncDir = %v, want injected", err)
	}
	bfs.failDirDir = false

	if st := s.Stats(); st.SnapshotErrors != 3 {
		t.Fatalf("SnapshotErrors = %d, want 3", st.SnapshotErrors)
	}

	// After all that, a clean compaction still works and the WAL
	// contents survive a reopen.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	re := openStore(t, dir, Options{})
	if rec := re.Recovery(); !rec.SnapshotLoaded {
		t.Fatalf("final compaction did not land: %+v", rec)
	}
}

func TestCompactRenameFailureKeepsSegment(t *testing.T) {
	// If the WAL rotation fails, compaction keeps appending to the old
	// segment; replay must still see every record exactly once via the
	// snapshot-seq filter.
	dir := t.TempDir()
	bfs := &brokenFS{FS: OS, failRename: true}
	s, err := Open(dir, Options{Fsync: FsyncNever, FS: bfs})
	if err != nil {
		t.Fatal(err)
	}
	s.SetSnapshotFunc(func() ([]byte, error) { return []byte(`{}`), nil })
	appendN(t, s, 3)
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact with failed rotation = %v, want success (rotation is best-effort)", err)
	}
	appendN(t, s, 2)
	s.Close()

	re := openStore(t, dir, Options{})
	rec := re.Recovery()
	if !rec.SnapshotLoaded || rec.SnapshotSeq != 3 {
		t.Fatalf("recovery = %+v, want snapshot seq 3", rec)
	}
	if rec.SkippedDuplicates != 3 || rec.Replayed != 2 {
		t.Fatalf("recovery = %+v, want 3 skipped (pre-snapshot) + 2 replayed", rec)
	}
}

func TestFsyncAlwaysSurfacesSyncError(t *testing.T) {
	bfs := &brokenFS{FS: OS, failSync: true}
	s, err := Open(t.TempDir(), Options{Fsync: FsyncAlways, FS: bfs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append("block", blockPayload{}); !errors.Is(err, errInjected) {
		t.Fatalf("Append under failing fsync = %v, want injected", err)
	}
	if st := s.Stats(); st.SyncErrors != 1 {
		t.Fatalf("SyncErrors = %d, want 1", st.SyncErrors)
	}
}

func TestSyncErrorCounted(t *testing.T) {
	bfs := &brokenFS{FS: OS, failSync: true}
	s, err := Open(t.TempDir(), Options{Fsync: FsyncNever, FS: bfs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendN(t, s, 1)
	if err := s.Sync(); !errors.Is(err, errInjected) {
		t.Fatalf("Sync = %v, want injected", err)
	}
	if st := s.Stats(); st.SyncErrors != 1 {
		t.Fatalf("SyncErrors = %d, want 1", st.SyncErrors)
	}
}

func TestCounterResetReplay(t *testing.T) {
	clock := &fixedClock{now: time.Date(2003, 5, 1, 12, 0, 0, 0, time.UTC)}
	dir := t.TempDir()
	c1 := components(clock.Now)
	attach(t, dir, c1)
	c1.Counters.Add("login-fail:carol")
	c1.Counters.Add("login-fail:carol")
	c1.Counters.Reset("login-fail:carol")

	c2 := components(clock.Now)
	attach(t, dir, c2)
	if got := c2.Counters.CountSince("login-fail:carol", time.Hour); got != 0 {
		t.Fatalf("reset counter replayed to %d, want 0", got)
	}
}

func TestExpiredBlockInWALTailDropped(t *testing.T) {
	clock := &fixedClock{now: time.Date(2003, 5, 1, 12, 0, 0, 0, time.UTC)}
	dir := t.TempDir()
	c1 := components(clock.Now)
	attach(t, dir, c1)
	c1.Blocks.Block("10.0.0.1", time.Minute)

	clock.now = clock.now.Add(time.Hour)
	c2 := components(clock.Now)
	_, a2 := attach(t, dir, c2)
	if sum := a2.Restored(); sum.Blocks != 0 || sum.ExpiredBlocks != 1 {
		t.Fatalf("restore summary = %+v, want 0 live / 1 expired", sum)
	}
}

func TestAttachWithNilComponents(t *testing.T) {
	dir := t.TempDir()
	c1 := components(time.Now)
	attach(t, dir, c1)
	c1.Blocks.Block("10.0.0.1", time.Hour)
	c1.Threat.Set(ids.High)
	c1.Counters.Add("k")
	c1.Groups.Add("BadGuys", "x")

	// A caller persisting only some components skips the others'
	// records without error.
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a, err := Attach(s, Components{})
	if err != nil {
		t.Fatal(err)
	}
	if sum := a.Restored(); sum != (RestoreSummary{}) {
		t.Fatalf("nil components restored %+v", sum)
	}
}
