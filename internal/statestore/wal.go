package statestore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// The WAL is a sequence of length+CRC framed records:
//
//	[4B little-endian payload length][4B IEEE CRC32 of payload][payload]
//
// The payload is the JSON encoding of a Record. A crash (or an injected
// short write) can leave a torn frame at the tail; scanWAL stops at the
// first frame that does not check out and reports how many bytes it
// left behind, so recovery replays the longest valid prefix instead of
// refusing to start.

const frameHeaderSize = 8

// maxRecordSize bounds a single record payload; a length field above it
// is treated as corruption, not as an instruction to allocate gigabytes.
const maxRecordSize = 1 << 20

// Record is one journaled mutation.
type Record struct {
	// Seq is the monotonically increasing record sequence number;
	// snapshots store the sequence they cover so replay can skip
	// records already folded in (at-least-once across a compaction).
	Seq uint64 `json:"seq"`
	// Kind names the mutation ("block", "threat", "count", ...).
	Kind string `json:"k"`
	// Data is the kind-specific payload.
	Data json.RawMessage `json:"d,omitempty"`
}

// encodeFrame renders a record as a framed WAL entry.
func encodeFrame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("statestore: encode record: %w", err)
	}
	if len(payload) > maxRecordSize {
		return nil, fmt.Errorf("statestore: record of %d bytes exceeds the %d-byte frame limit", len(payload), maxRecordSize)
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderSize:], payload)
	return frame, nil
}

// EncodeFrames renders records in the WAL frame format. It is the
// cluster-replication wire encoding: the same length+CRC framing that
// protects the on-disk journal protects the records a node ships to
// its peers.
func EncodeFrames(recs []Record) ([]byte, error) {
	var out []byte
	for _, rec := range recs {
		frame, err := encodeFrame(rec)
		if err != nil {
			return nil, err
		}
		out = append(out, frame...)
	}
	return out, nil
}

// DecodeFrames parses framed records from data. It always returns the
// records of the longest valid prefix; a torn or corrupt tail is
// reported as a *FrameError (records stay usable) so a receiver can
// apply what checked out and count the corruption.
func DecodeFrames(data []byte) ([]Record, error) {
	res := scanWAL(data)
	if res.droppedBytes > 0 {
		return res.records, &FrameError{
			Reason:   res.droppedReason,
			ValidLen: res.validLen,
			Dropped:  res.droppedBytes,
		}
	}
	return res.records, nil
}

// FrameError describes the invalid tail DecodeFrames stopped at.
type FrameError struct {
	// Reason explains why the scan stopped.
	Reason string
	// ValidLen is the byte length of the valid record prefix.
	ValidLen int64
	// Dropped counts the bytes past the valid prefix.
	Dropped int64
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("statestore: invalid frame at offset %d (%s, %d bytes dropped)",
		e.ValidLen, e.Reason, e.Dropped)
}

// scanResult is what scanWAL recovered from one WAL file.
type scanResult struct {
	records []Record
	// validLen is the byte length of the longest valid record prefix.
	validLen int64
	// droppedBytes counts tail bytes past the valid prefix.
	droppedBytes int64
	// droppedReason explains why the scan stopped early ("" when the
	// whole file parsed).
	droppedReason string
}

// scanWAL walks framed records from the start of data, stopping at the
// first torn or corrupt frame.
func scanWAL(data []byte) scanResult {
	var res scanResult
	off := int64(0)
	total := int64(len(data))
	stop := func(reason string) scanResult {
		res.validLen = off
		res.droppedBytes = total - off
		res.droppedReason = reason
		return res
	}
	for off < total {
		if total-off < frameHeaderSize {
			return stop("torn frame header")
		}
		length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > maxRecordSize {
			return stop(fmt.Sprintf("frame length %d exceeds limit", length))
		}
		if total-off-frameHeaderSize < length {
			return stop("torn frame payload")
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+length]
		if crc32.ChecksumIEEE(payload) != sum {
			return stop("payload CRC mismatch")
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return stop("payload not a record: " + err.Error())
		}
		res.records = append(res.records, rec)
		off += frameHeaderSize + length
	}
	res.validLen = off
	return res
}
