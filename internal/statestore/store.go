// Package statestore is a crash-safe store for the server's adaptive
// state — the blacklists, network blocks, threat level, and failure
// counters that detection feeds back into authorization. The paper's
// feedback loop only tightens future decisions if that state survives
// the restart an attacker can provoke; statestore makes it durable with
// an append-only write-ahead log (length+CRC32-framed records) plus
// periodic compacting snapshots, and recovers by replaying the longest
// valid WAL prefix, quarantining a torn or corrupt tail instead of
// refusing to start.
package statestore

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// File names inside the state directory.
const (
	walName      = "wal.log"
	walPrevName  = "wal.prev.log"
	snapName     = "snapshot.json"
	snapTempName = "snapshot.json.tmp"
	quarName     = "quarantine.bin"
)

// FsyncPolicy controls when appended records are forced to disk.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: no acknowledged mutation is
	// ever lost, at a per-write latency cost.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background tick (default 100ms): a crash
	// loses at most one interval of mutations.
	FsyncInterval
	// FsyncNever leaves flushing to the OS page cache: a process crash
	// loses nothing, a power loss may lose everything since the last
	// snapshot.
	FsyncNever
)

// String returns "always", "interval" or "never".
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy converts "always", "interval" or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return FsyncAlways, nil
	case "interval", "":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("statestore: unknown fsync policy %q (want always|interval|never)", s)
	}
}

// Options configures a Store.
type Options struct {
	// Fsync is the WAL flush policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncInterval is the background flush period under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// SnapshotEvery compacts the WAL into a snapshot after this many
	// appended records (default 4096; negative disables count-driven
	// compaction).
	SnapshotEvery int
	// SnapshotInterval additionally compacts on a timer (0: off).
	SnapshotInterval time.Duration
	// FS overrides the filesystem (fault injection); default OS.
	FS FS
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 4096
	}
	if o.FS == nil {
		o.FS = OS
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// RecoveryReport describes what Open restored and what it had to drop.
type RecoveryReport struct {
	// SnapshotLoaded reports whether a valid snapshot was applied.
	SnapshotLoaded bool `json:"snapshot_loaded"`
	// SnapshotSeq is the sequence number the snapshot covers.
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// SnapshotQuarantined reports that a snapshot file existed but was
	// corrupt and set aside.
	SnapshotQuarantined bool `json:"snapshot_quarantined,omitempty"`
	// Replayed is the number of WAL records recovered past the snapshot.
	Replayed int `json:"replayed"`
	// SkippedDuplicates counts WAL records already covered by the
	// snapshot (seq <= SnapshotSeq), e.g. after a crash between a
	// compaction's snapshot write and its WAL cleanup.
	SkippedDuplicates int `json:"skipped_duplicates,omitempty"`
	// DroppedBytes is the size of the torn/corrupt WAL tail that was
	// quarantined rather than replayed.
	DroppedBytes int64 `json:"dropped_bytes,omitempty"`
	// DroppedReason explains why the tail was rejected.
	DroppedReason string `json:"dropped_reason,omitempty"`
	// QuarantineFile is where the rejected bytes were preserved for
	// forensics ("" when nothing was dropped).
	QuarantineFile string `json:"quarantine_file,omitempty"`
}

// Stats are the store's operation counters.
type Stats struct {
	// Appends counts journaled records this process wrote.
	Appends uint64 `json:"appends"`
	// AppendErrors counts appends that failed (disk faults).
	AppendErrors uint64 `json:"append_errors"`
	// Snapshots counts compactions taken this process.
	Snapshots uint64 `json:"snapshots"`
	// SnapshotErrors counts failed compactions.
	SnapshotErrors uint64 `json:"snapshot_errors"`
	// Syncs counts explicit WAL fsyncs.
	Syncs uint64 `json:"syncs"`
	// SyncErrors counts failed fsyncs.
	SyncErrors uint64 `json:"sync_errors"`
	// LastSeq is the highest record sequence number issued.
	LastSeq uint64 `json:"last_seq"`
}

// snapFile is the on-disk snapshot format: the adaptive state bytes
// plus the WAL sequence they cover, integrity-checked with a CRC.
type snapFile struct {
	Version int             `json:"version"`
	Seq     uint64          `json:"seq"`
	CRC     uint32          `json:"crc32"`
	State   json.RawMessage `json:"state"`
}

// Store is the crash-safe adaptive-state store. Safe for concurrent
// use. One Store owns its directory; run one per process.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	wal      File
	nextSeq  uint64
	sinceSnp int  // records since last snapshot
	dirty    bool // unsynced appends (interval/never policies)
	closed   bool
	stats    Stats
	// walSize is the byte length of the valid WAL prefix; a torn
	// (short) write is repaired by truncating back to it before the
	// next record goes in, so one disk fault cannot orphan every
	// record appended after it.
	walSize    int64
	needsTrunc bool

	recovery RecoveryReport
	snapshot json.RawMessage // state restored at Open (nil: none)
	tail     []Record        // records past the snapshot, for replay

	// snapshotFunc gathers the current adaptive state for compaction;
	// set via SetSnapshotFunc before compaction can run.
	snapshotFunc func() ([]byte, error)

	bgStop chan struct{}
	bgDone chan struct{}
}

// Open recovers the state directory and returns a store ready for
// appends. A missing directory is created; a torn WAL tail or corrupt
// snapshot is quarantined and reported via Recovery(), never an error.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("statestore: create %s: %w", dir, err)
	}
	s := &Store{dir: dir, opts: opts}
	if err := s.recover(); err != nil {
		return nil, err
	}
	wal, err := opts.FS.OpenAppend(s.path(walName))
	if err != nil {
		return nil, fmt.Errorf("statestore: open WAL: %w", err)
	}
	s.wal = wal
	if opts.Fsync == FsyncInterval || opts.SnapshotInterval > 0 {
		s.bgStop = make(chan struct{})
		s.bgDone = make(chan struct{})
		go s.background()
	}
	return s, nil
}

func (s *Store) path(name string) string { return filepath.Join(s.dir, name) }

// recover loads the snapshot and replays the WAL(s), truncating the
// longest valid prefix boundary and quarantining whatever follows.
func (s *Store) recover() error {
	fs := s.opts.FS

	// Snapshot: validate JSON shape and state CRC; quarantine on
	// mismatch and continue from the WAL alone.
	if raw, err := fs.ReadFile(s.path(snapName)); err == nil && len(raw) > 0 {
		var sf snapFile
		if jsonErr := json.Unmarshal(raw, &sf); jsonErr != nil || sf.Version != 1 || crc32.ChecksumIEEE(sf.State) != sf.CRC {
			s.recovery.SnapshotQuarantined = true
			s.quarantine(raw, "corrupt snapshot")
			_ = fs.Remove(s.path(snapName))
		} else {
			s.recovery.SnapshotLoaded = true
			s.recovery.SnapshotSeq = sf.Seq
			s.snapshot = sf.State
			s.nextSeq = sf.Seq
		}
	}

	// WAL: a crash mid-compaction can leave the rotated-out previous
	// segment behind; its records are older, so replay it first. The
	// snapshot-seq filter drops whatever the snapshot already covers.
	var torn []byte
	for _, name := range []string{walPrevName, walName} {
		data, err := fs.ReadFile(s.path(name))
		if err != nil || len(data) == 0 {
			continue
		}
		res := scanWAL(data)
		if res.droppedBytes > 0 {
			s.recovery.DroppedBytes += res.droppedBytes
			s.recovery.DroppedReason = res.droppedReason
			torn = append(torn, data[res.validLen:]...)
			if err := fs.Truncate(s.path(name), res.validLen); err != nil {
				return fmt.Errorf("statestore: truncate torn tail of %s: %w", name, err)
			}
		}
		if name == walName {
			s.walSize = res.validLen
		}
		for _, rec := range res.records {
			if rec.Seq <= s.recovery.SnapshotSeq && s.recovery.SnapshotLoaded {
				s.recovery.SkippedDuplicates++
				continue
			}
			s.tail = append(s.tail, rec)
			if rec.Seq > s.nextSeq {
				s.nextSeq = rec.Seq
			}
		}
	}
	s.recovery.Replayed = len(s.tail)
	if len(torn) > 0 {
		s.quarantine(torn, s.recovery.DroppedReason)
	}
	s.stats.LastSeq = s.nextSeq
	return nil
}

// quarantine preserves rejected bytes beside the store for forensics;
// best-effort (a failure to quarantine must not block recovery).
func (s *Store) quarantine(data []byte, reason string) {
	name := s.path(quarName)
	f, err := s.opts.FS.Create(name)
	if err != nil {
		return
	}
	defer f.Close()
	if _, err := f.Write(data); err == nil {
		s.recovery.QuarantineFile = name
		if s.recovery.DroppedReason == "" {
			s.recovery.DroppedReason = reason
		}
	}
}

// Recovery returns what Open restored and dropped.
func (s *Store) Recovery() RecoveryReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// SnapshotData returns the state bytes of the recovered snapshot, if
// one was loaded.
func (s *Store) SnapshotData() (json.RawMessage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshot, s.snapshot != nil
}

// Tail returns the recovered WAL records newer than the snapshot, in
// append order. The caller replays them over the snapshot state.
func (s *Store) Tail() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tail
}

// Stats returns the operation counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// SetSnapshotFunc installs the state-gathering callback compaction
// uses. Until it is set, compaction is disabled.
func (s *Store) SetSnapshotFunc(fn func() ([]byte, error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapshotFunc = fn
}

// ErrClosed is returned by appends to a closed store.
var ErrClosed = errors.New("statestore: store closed")

// Append journals one mutation. v is JSON-encoded as the record data.
// Under FsyncAlways the record is on stable storage when Append
// returns.
func (s *Store) Append(kind string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("statestore: encode %s: %w", kind, err)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	// Repair a previously torn append before writing anything new:
	// bytes past walSize are a partial frame that would orphan every
	// record appended after them.
	if s.needsTrunc {
		if err := s.opts.FS.Truncate(s.path(walName), s.walSize); err != nil {
			s.stats.AppendErrors++
			s.mu.Unlock()
			return fmt.Errorf("statestore: repair torn WAL tail: %w", err)
		}
		s.needsTrunc = false
	}
	s.nextSeq++
	rec := Record{Seq: s.nextSeq, Kind: kind, Data: data}
	frame, err := encodeFrame(rec)
	if err == nil {
		var n int
		n, err = s.wal.Write(frame)
		if err != nil && n > 0 {
			// Short write: mark the tail for truncation.
			s.needsTrunc = true
		}
	}
	if err != nil {
		s.stats.AppendErrors++
		s.mu.Unlock()
		return fmt.Errorf("statestore: append %s: %w", kind, err)
	}
	s.walSize += int64(len(frame))
	s.stats.Appends++
	s.stats.LastSeq = s.nextSeq
	s.sinceSnp++
	s.dirty = true
	if s.opts.Fsync == FsyncAlways {
		s.stats.Syncs++
		if err := s.wal.Sync(); err != nil {
			s.stats.SyncErrors++
			s.mu.Unlock()
			return fmt.Errorf("statestore: fsync: %w", err)
		}
		s.dirty = false
	}
	needSnap := s.opts.SnapshotEvery > 0 && s.sinceSnp >= s.opts.SnapshotEvery && s.snapshotFunc != nil
	s.mu.Unlock()

	if needSnap {
		// Compact outside the store lock: the snapshot func reads the
		// live components, whose mutators may themselves be appending.
		_ = s.Compact()
	}
	return nil
}

// Sync forces buffered WAL records to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.closed || !s.dirty {
		return nil
	}
	s.stats.Syncs++
	if err := s.wal.Sync(); err != nil {
		s.stats.SyncErrors++
		return err
	}
	s.dirty = false
	return nil
}

// Compact folds the live state into a fresh snapshot and resets the
// WAL. Mutations racing with the state gather may be both included in
// the snapshot and replayed from the WAL on the next open — replay is
// at-least-once; consumers apply records idempotently.
func (s *Store) Compact() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	fn := s.snapshotFunc
	if fn == nil {
		s.mu.Unlock()
		return errors.New("statestore: no snapshot func installed")
	}
	// Rotate the WAL under the lock so no append lands between the
	// sequence cut and the fresh segment.
	snapSeq := s.nextSeq
	if err := s.syncLocked(); err != nil {
		s.stats.SnapshotErrors++
		s.mu.Unlock()
		return fmt.Errorf("statestore: compact: flush WAL: %w", err)
	}
	if err := s.wal.Close(); err != nil {
		s.stats.SnapshotErrors++
		s.mu.Unlock()
		return fmt.Errorf("statestore: compact: close WAL: %w", err)
	}
	rotated := true
	if err := s.opts.FS.Rename(s.path(walName), s.path(walPrevName)); err != nil {
		rotated = false // keep appending to the old segment
	}
	wal, err := s.opts.FS.OpenAppend(s.path(walName))
	if err != nil {
		s.stats.SnapshotErrors++
		s.mu.Unlock()
		return fmt.Errorf("statestore: compact: reopen WAL: %w", err)
	}
	s.wal = wal
	s.sinceSnp = 0
	if rotated {
		s.walSize = 0
		s.needsTrunc = false
	}
	s.mu.Unlock()

	state, err := fn()
	if err == nil {
		err = s.writeSnapshot(state, snapSeq)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.stats.SnapshotErrors++
		return fmt.Errorf("statestore: compact: %w", err)
	}
	s.stats.Snapshots++
	if rotated {
		_ = s.opts.FS.Remove(s.path(walPrevName))
	}
	return nil
}

// writeSnapshot persists state atomically: temp file, fsync, rename,
// directory sync.
func (s *Store) writeSnapshot(state []byte, seq uint64) error {
	sf := snapFile{Version: 1, Seq: seq, CRC: crc32.ChecksumIEEE(state), State: state}
	raw, err := json.Marshal(sf)
	if err != nil {
		return err
	}
	f, err := s.opts.FS.Create(s.path(snapTempName))
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := s.opts.FS.Rename(s.path(snapTempName), s.path(snapName)); err != nil {
		return err
	}
	return s.opts.FS.SyncDir(s.dir)
}

// background runs the interval fsync and timed compaction loops.
func (s *Store) background() {
	defer close(s.bgDone)
	syncTick := time.NewTicker(s.opts.FsyncInterval)
	defer syncTick.Stop()
	var snapC <-chan time.Time
	if s.opts.SnapshotInterval > 0 {
		snapTick := time.NewTicker(s.opts.SnapshotInterval)
		defer snapTick.Stop()
		snapC = snapTick.C
	}
	for {
		select {
		case <-s.bgStop:
			return
		case <-syncTick.C:
			if s.opts.Fsync == FsyncInterval {
				_ = s.Sync()
			}
		case <-snapC:
			s.mu.Lock()
			ready := s.snapshotFunc != nil && s.sinceSnp > 0
			s.mu.Unlock()
			if ready {
				_ = s.Compact()
			}
		}
	}
}

// Close flushes the WAL and releases the store. It does not compact:
// restart exercises WAL replay, which is the path that must work.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	if s.bgStop != nil {
		close(s.bgStop)
	}
	s.mu.Unlock()
	if s.bgDone != nil {
		<-s.bgDone
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.syncLocked()
	s.closed = true
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	return err
}
