package netblock

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

type clock struct{ now time.Time }

func newClock() *clock {
	return &clock{now: time.Date(2003, 5, 19, 12, 0, 0, 0, time.UTC)}
}

func (c *clock) Now() time.Time          { return c.now }
func (c *clock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func TestBlockSingleIP(t *testing.T) {
	s := NewSet()
	s.Block("10.0.0.66", 0)
	if !s.Blocked("10.0.0.66") {
		t.Error("blocked IP not reported")
	}
	if s.Blocked("10.0.0.67") {
		t.Error("unrelated IP reported blocked")
	}
	s.Unblock("10.0.0.66")
	if s.Blocked("10.0.0.66") {
		t.Error("Unblock had no effect")
	}
}

func TestBlockCIDR(t *testing.T) {
	s := NewSet()
	s.Block("192.168.0.0/24", 0)
	if !s.Blocked("192.168.0.200") {
		t.Error("address in blocked CIDR not reported")
	}
	if s.Blocked("192.168.1.1") {
		t.Error("address outside CIDR reported blocked")
	}
	s.Unblock("192.168.0.0/24")
	if s.Blocked("192.168.0.200") {
		t.Error("CIDR unblock had no effect")
	}
}

func TestBlockExpiry(t *testing.T) {
	clk := newClock()
	s := NewSet(WithClock(clk.Now))
	s.Block("10.0.0.66", 10*time.Minute)
	s.Block("172.16.0.0/16", 10*time.Minute)
	if !s.Blocked("10.0.0.66") || !s.Blocked("172.16.5.5") {
		t.Fatal("fresh blocks not effective")
	}
	clk.Advance(11 * time.Minute)
	if s.Blocked("10.0.0.66") {
		t.Error("expired host block still effective")
	}
	if s.Blocked("172.16.5.5") {
		t.Error("expired CIDR block still effective")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0 after expiry", s.Len())
	}
}

func TestPermanentBlockSurvives(t *testing.T) {
	clk := newClock()
	s := NewSet(WithClock(clk.Now))
	s.Block("10.0.0.1", 0)
	clk.Advance(1000 * time.Hour)
	if !s.Blocked("10.0.0.1") {
		t.Error("permanent block expired")
	}
}

func TestMalformedAddressBlockedOpaquely(t *testing.T) {
	s := NewSet()
	s.Block("not-an-ip", 0)
	if !s.Blocked("not-an-ip") {
		t.Error("opaque host string not blocked")
	}
	// A malformed CIDR degrades to an opaque host entry.
	s.Block("999.0.0.0/99", 0)
	if !s.Blocked("999.0.0.0/99") {
		t.Error("malformed CIDR not blocked opaquely")
	}
}

func TestList(t *testing.T) {
	s := NewSet()
	s.Block("10.0.0.2", 0)
	s.Block("10.0.0.1", 0)
	s.Block("192.168.0.0/24", 0)
	want := []string{"10.0.0.1", "10.0.0.2", "192.168.0.0/24"}
	if got := s.List(); !reflect.DeepEqual(got, want) {
		t.Errorf("List = %v, want %v", got, want)
	}
}

func TestConcurrentUse(t *testing.T) {
	s := NewSet()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ip := "10.0.0." + string(rune('0'+i%10))
			s.Block(ip, time.Minute)
			s.Blocked(ip)
			s.List()
		}(i)
	}
	wg.Wait()
}

func TestEntriesDeterministicOrder(t *testing.T) {
	now := time.Date(2003, 5, 1, 12, 0, 0, 0, time.UTC)
	s := NewSet(WithClock(func() time.Time { return now }))
	s.Block("203.0.113.9", time.Hour)
	s.Block("10.0.0.0/8", 0)
	s.Block("192.168.1.1", 0)
	s.Block("172.16.0.1", 30*time.Minute)

	want := []string{"10.0.0.0/8", "172.16.0.1", "192.168.1.1", "203.0.113.9"}
	for i := 0; i < 5; i++ {
		got := s.List()
		if len(got) != len(want) {
			t.Fatalf("List() = %v, want %v", got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("List()[%d] = %q, want %q (must be sorted)", j, got[j], want[j])
			}
		}
	}

	entries := s.Entries()
	if !entries[0].Permanent || !entries[0].Expiry.IsZero() {
		t.Fatalf("permanent CIDR entry = %+v", entries[0])
	}
	if entries[1].Permanent || !entries[1].Expiry.Equal(now.Add(30*time.Minute)) {
		t.Fatalf("timed entry = %+v, want expiry %v", entries[1], now.Add(30*time.Minute))
	}
}

func TestEntriesOmitExpired(t *testing.T) {
	now := time.Date(2003, 5, 1, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	s := NewSet(WithClock(clock))
	s.Block("10.0.0.1", time.Minute)
	s.Block("10.0.0.0/24", time.Minute)
	s.Block("10.0.0.2", 0)
	now = now.Add(time.Hour)
	if got := s.Entries(); len(got) != 1 || got[0].Addr != "10.0.0.2" {
		t.Fatalf("Entries() after expiry = %+v, want only the permanent block", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", s.Len())
	}
}

func TestBlockUntilIdempotentReplay(t *testing.T) {
	now := time.Date(2003, 5, 1, 12, 0, 0, 0, time.UTC)
	s := NewSet(WithClock(func() time.Time { return now }))
	exp1 := now.Add(time.Hour)
	exp2 := now.Add(2 * time.Hour)
	// Replaying the same address twice must update in place, not grow.
	s.BlockUntil("10.0.0.1", exp1)
	s.BlockUntil("10.0.0.1", exp2)
	s.BlockUntil("10.0.0.0/24", exp1)
	s.BlockUntil("10.0.0.0/24", exp2)
	entries := s.Entries()
	if len(entries) != 2 {
		t.Fatalf("replayed duplicates grew the set: %+v", entries)
	}
	for _, e := range entries {
		if !e.Expiry.Equal(exp2) {
			t.Fatalf("entry %q expiry %v, want the later replay %v", e.Addr, e.Expiry, exp2)
		}
	}
}

func TestJournalReceivesMutations(t *testing.T) {
	s := NewSet()
	var events []Event
	s.SetJournal(func(ev Event) { events = append(events, ev) })
	s.Block("10.0.0.1", time.Hour)
	s.Block("10.0.0.2", 0)
	s.Unblock("10.0.0.1")
	if len(events) != 3 {
		t.Fatalf("journaled %d events, want 3", len(events))
	}
	if events[0].Unblock || events[0].Addr != "10.0.0.1" || events[0].Expiry.IsZero() {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if !events[1].Expiry.IsZero() {
		t.Fatalf("permanent block journaled with expiry: %+v", events[1])
	}
	if !events[2].Unblock {
		t.Fatalf("unblock not journaled: %+v", events[2])
	}
}

func TestApplyEventLaterDeadlineWins(t *testing.T) {
	now := time.Date(2003, 5, 1, 12, 0, 0, 0, time.UTC)
	s := NewSet(WithClock(func() time.Time { return now }))

	short := now.Add(10 * time.Minute)
	long := now.Add(24 * time.Hour)

	if !s.ApplyEvent(Event{Addr: "10.0.0.1", Expiry: short}) {
		t.Fatal("fresh block not applied")
	}
	if !s.ApplyEvent(Event{Addr: "10.0.0.1", Expiry: long}) {
		t.Fatal("longer deadline did not extend")
	}
	if s.ApplyEvent(Event{Addr: "10.0.0.1", Expiry: short}) {
		t.Fatal("shorter deadline overwrote a longer one")
	}
	if got := s.Entries()[0].Expiry; !got.Equal(long) {
		t.Fatalf("deadline = %v, want %v", got, long)
	}

	// Permanent is the latest possible deadline: it beats any timed
	// one and nothing extends it.
	if !s.ApplyEvent(Event{Addr: "10.0.0.1"}) {
		t.Fatal("permanent did not beat timed")
	}
	if s.ApplyEvent(Event{Addr: "10.0.0.1", Expiry: long}) {
		t.Fatal("timed deadline replaced permanent")
	}
	if s.ApplyEvent(Event{Addr: "10.0.0.1"}) {
		t.Fatal("re-applying permanent reported change")
	}
}

func TestApplyEventCIDRAndUnblock(t *testing.T) {
	now := time.Date(2003, 5, 1, 12, 0, 0, 0, time.UTC)
	s := NewSet(WithClock(func() time.Time { return now }))

	if !s.ApplyEvent(Event{Addr: "192.0.2.0/24", Expiry: now.Add(time.Hour)}) {
		t.Fatal("CIDR block not applied")
	}
	if !s.Blocked("192.0.2.55") {
		t.Fatal("CIDR block not effective")
	}
	if s.ApplyEvent(Event{Addr: "192.0.2.0/24", Expiry: now.Add(time.Minute)}) {
		t.Fatal("shorter CIDR deadline applied")
	}
	if !s.ApplyEvent(Event{Unblock: true, Addr: "192.0.2.0/24"}) {
		t.Fatal("CIDR unblock not applied")
	}
	if s.ApplyEvent(Event{Unblock: true, Addr: "192.0.2.0/24"}) {
		t.Fatal("unblock of absent entry reported change")
	}
	if s.Blocked("192.0.2.55") {
		t.Fatal("CIDR still blocked after unblock")
	}
}

func TestApplyEventDoesNotJournal(t *testing.T) {
	s := NewSet()
	var hook int
	s.SetJournal(func(Event) { hook++ })
	s.ApplyEvent(Event{Addr: "10.0.0.9"})
	s.ApplyEvent(Event{Unblock: true, Addr: "10.0.0.9"})
	if hook != 0 {
		t.Fatalf("ApplyEvent invoked the journal %d times; replication would loop", hook)
	}
}
