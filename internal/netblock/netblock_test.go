package netblock

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

type clock struct{ now time.Time }

func newClock() *clock {
	return &clock{now: time.Date(2003, 5, 19, 12, 0, 0, 0, time.UTC)}
}

func (c *clock) Now() time.Time          { return c.now }
func (c *clock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func TestBlockSingleIP(t *testing.T) {
	s := NewSet()
	s.Block("10.0.0.66", 0)
	if !s.Blocked("10.0.0.66") {
		t.Error("blocked IP not reported")
	}
	if s.Blocked("10.0.0.67") {
		t.Error("unrelated IP reported blocked")
	}
	s.Unblock("10.0.0.66")
	if s.Blocked("10.0.0.66") {
		t.Error("Unblock had no effect")
	}
}

func TestBlockCIDR(t *testing.T) {
	s := NewSet()
	s.Block("192.168.0.0/24", 0)
	if !s.Blocked("192.168.0.200") {
		t.Error("address in blocked CIDR not reported")
	}
	if s.Blocked("192.168.1.1") {
		t.Error("address outside CIDR reported blocked")
	}
	s.Unblock("192.168.0.0/24")
	if s.Blocked("192.168.0.200") {
		t.Error("CIDR unblock had no effect")
	}
}

func TestBlockExpiry(t *testing.T) {
	clk := newClock()
	s := NewSet(WithClock(clk.Now))
	s.Block("10.0.0.66", 10*time.Minute)
	s.Block("172.16.0.0/16", 10*time.Minute)
	if !s.Blocked("10.0.0.66") || !s.Blocked("172.16.5.5") {
		t.Fatal("fresh blocks not effective")
	}
	clk.Advance(11 * time.Minute)
	if s.Blocked("10.0.0.66") {
		t.Error("expired host block still effective")
	}
	if s.Blocked("172.16.5.5") {
		t.Error("expired CIDR block still effective")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0 after expiry", s.Len())
	}
}

func TestPermanentBlockSurvives(t *testing.T) {
	clk := newClock()
	s := NewSet(WithClock(clk.Now))
	s.Block("10.0.0.1", 0)
	clk.Advance(1000 * time.Hour)
	if !s.Blocked("10.0.0.1") {
		t.Error("permanent block expired")
	}
}

func TestMalformedAddressBlockedOpaquely(t *testing.T) {
	s := NewSet()
	s.Block("not-an-ip", 0)
	if !s.Blocked("not-an-ip") {
		t.Error("opaque host string not blocked")
	}
	// A malformed CIDR degrades to an opaque host entry.
	s.Block("999.0.0.0/99", 0)
	if !s.Blocked("999.0.0.0/99") {
		t.Error("malformed CIDR not blocked opaquely")
	}
}

func TestList(t *testing.T) {
	s := NewSet()
	s.Block("10.0.0.2", 0)
	s.Block("10.0.0.1", 0)
	s.Block("192.168.0.0/24", 0)
	want := []string{"10.0.0.1", "10.0.0.2", "192.168.0.0/24"}
	if got := s.List(); !reflect.DeepEqual(got, want) {
		t.Errorf("List = %v, want %v", got, want)
	}
}

func TestConcurrentUse(t *testing.T) {
	s := NewSet()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ip := "10.0.0." + string(rune('0'+i%10))
			s.Block(ip, time.Minute)
			s.Blocked(ip)
			s.List()
		}(i)
	}
	wg.Wait()
}
