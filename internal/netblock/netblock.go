// Package netblock simulates the firewall-facing countermeasures of the
// paper's section 1: "blocking connections from particular parts of the
// network". The web server consults the block set before processing a
// request; response actions (rr_cond_block_ip) add entries, optionally
// with an expiry.
package netblock

import (
	"net"
	"sort"
	"strings"
	"sync"
	"time"
)

// Set is a concurrent-safe set of blocked addresses and CIDR ranges.
type Set struct {
	clock func() time.Time

	mu    sync.Mutex
	hosts map[string]time.Time // ip -> expiry (zero = permanent)
	nets  []blockedNet
}

type blockedNet struct {
	cidr   string
	ipnet  *net.IPNet
	expiry time.Time // zero = permanent
}

// Option configures a Set.
type Option interface{ apply(*Set) }

type optionFunc func(*Set)

func (f optionFunc) apply(s *Set) { f(s) }

// WithClock overrides the time source (tests).
func WithClock(now func() time.Time) Option {
	return optionFunc(func(s *Set) { s.clock = now })
}

// NewSet returns an empty block set.
func NewSet(opts ...Option) *Set {
	s := &Set{clock: time.Now, hosts: make(map[string]time.Time)}
	for _, o := range opts {
		o.apply(s)
	}
	return s
}

// Block adds addr — a single IP or a CIDR range — for the given
// duration; d <= 0 blocks permanently. Unparsable addresses are blocked
// as opaque host strings so a malformed-but-repeating client still gets
// stopped.
func (s *Set) Block(addr string, d time.Duration) {
	var expiry time.Time
	if d > 0 {
		expiry = s.clock().Add(d)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if strings.Contains(addr, "/") {
		if _, ipnet, err := net.ParseCIDR(addr); err == nil {
			s.nets = append(s.nets, blockedNet{cidr: addr, ipnet: ipnet, expiry: expiry})
			return
		}
	}
	s.hosts[addr] = expiry
}

// Unblock removes a previously blocked address or CIDR.
func (s *Set) Unblock(addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.hosts, addr)
	kept := s.nets[:0]
	for _, n := range s.nets {
		if n.cidr != addr {
			kept = append(kept, n)
		}
	}
	s.nets = kept
}

// Blocked reports whether ip is currently blocked, expiring stale
// entries as a side effect.
func (s *Set) Blocked(ip string) bool {
	now := s.clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if expiry, ok := s.hosts[ip]; ok {
		if expiry.IsZero() || now.Before(expiry) {
			return true
		}
		delete(s.hosts, ip)
	}
	parsed := net.ParseIP(ip)
	kept := s.nets[:0]
	blocked := false
	for _, n := range s.nets {
		if !n.expiry.IsZero() && !now.Before(n.expiry) {
			continue // expired
		}
		kept = append(kept, n)
		if parsed != nil && n.ipnet.Contains(parsed) {
			blocked = true
		}
	}
	s.nets = kept
	return blocked
}

// List returns the currently blocked addresses and CIDRs, sorted.
func (s *Set) List() []string {
	now := s.clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for h, expiry := range s.hosts {
		if expiry.IsZero() || now.Before(expiry) {
			out = append(out, h)
		}
	}
	for _, n := range s.nets {
		if n.expiry.IsZero() || now.Before(n.expiry) {
			out = append(out, n.cidr)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live block entries.
func (s *Set) Len() int {
	return len(s.List())
}
