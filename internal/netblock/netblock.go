// Package netblock simulates the firewall-facing countermeasures of the
// paper's section 1: "blocking connections from particular parts of the
// network". The web server consults the block set before processing a
// request; response actions (rr_cond_block_ip) add entries, optionally
// with an expiry.
package netblock

import (
	"net"
	"sort"
	"strings"
	"sync"
	"time"
)

// Set is a concurrent-safe set of blocked addresses and CIDR ranges.
type Set struct {
	clock func() time.Time

	mu    sync.Mutex
	hosts map[string]time.Time // ip -> expiry (zero = permanent)
	nets  []blockedNet

	journal func(Event)
}

// Event describes one mutation for persistence: a block (with its
// absolute expiry; zero = permanent) or an unblock. Journal hooks
// receive events after the mutation is applied, outside the set's
// lock.
type Event struct {
	// Unblock marks a removal; otherwise the event is a block.
	Unblock bool `json:"unblock,omitempty"`
	// Addr is the blocked IP, CIDR, or opaque host string.
	Addr string `json:"addr"`
	// Expiry is the absolute deadline (zero = permanent).
	Expiry time.Time `json:"expiry,omitempty"`
}

// Entry is one live block with its remaining lifetime, for status
// endpoints and persistence.
type Entry struct {
	// Addr is the blocked IP, CIDR, or opaque host string.
	Addr string `json:"addr"`
	// Permanent marks a block with no expiry.
	Permanent bool `json:"permanent,omitempty"`
	// Expiry is the absolute deadline (zero when Permanent).
	Expiry time.Time `json:"expiry,omitempty"`
}

type blockedNet struct {
	cidr   string
	ipnet  *net.IPNet
	expiry time.Time // zero = permanent
}

// Option configures a Set.
type Option interface{ apply(*Set) }

type optionFunc func(*Set)

func (f optionFunc) apply(s *Set) { f(s) }

// WithClock overrides the time source (tests).
func WithClock(now func() time.Time) Option {
	return optionFunc(func(s *Set) { s.clock = now })
}

// NewSet returns an empty block set.
func NewSet(opts ...Option) *Set {
	s := &Set{clock: time.Now, hosts: make(map[string]time.Time)}
	for _, o := range opts {
		o.apply(s)
	}
	return s
}

// SetJournal installs a hook receiving every mutation, for
// persistence. Restores (BlockUntil during recovery, before the hook
// is installed) are not journaled.
func (s *Set) SetJournal(fn func(Event)) {
	s.mu.Lock()
	s.journal = fn
	s.mu.Unlock()
}

// Block adds addr — a single IP or a CIDR range — for the given
// duration; d <= 0 blocks permanently. Unparsable addresses are blocked
// as opaque host strings so a malformed-but-repeating client still gets
// stopped.
func (s *Set) Block(addr string, d time.Duration) {
	var expiry time.Time
	if d > 0 {
		expiry = s.clock().Add(d)
	}
	s.BlockUntil(addr, expiry)
}

// BlockUntil adds addr with an absolute expiry (zero = permanent); it
// is how persistence restores blocks with their original deadlines.
// Re-blocking an already blocked address updates its expiry, so replay
// is idempotent.
func (s *Set) BlockUntil(addr string, expiry time.Time) {
	s.mu.Lock()
	applied := false
	if strings.Contains(addr, "/") {
		if _, ipnet, err := net.ParseCIDR(addr); err == nil {
			for i := range s.nets {
				if s.nets[i].cidr == addr {
					s.nets[i].expiry = expiry
					applied = true
					break
				}
			}
			if !applied {
				s.nets = append(s.nets, blockedNet{cidr: addr, ipnet: ipnet, expiry: expiry})
			}
			applied = true
		}
	}
	if !applied {
		s.hosts[addr] = expiry
	}
	journal := s.journal
	s.mu.Unlock()
	if journal != nil {
		journal(Event{Addr: addr, Expiry: expiry})
	}
}

// ApplyEvent merges a replicated mutation without journaling and
// reports whether local state changed. Blocks merge with
// later-deadline-wins (a permanent block counts as the latest possible
// deadline), so two nodes exchanging their block sets converge on the
// union with the longest protection per address instead of swapping
// deadlines forever. Unblocks remove the entry if present. The caller
// (statestore.Adaptive.ApplyRemote) journals changed state itself.
func (s *Set) ApplyEvent(ev Event) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ev.Unblock {
		if _, ok := s.hosts[ev.Addr]; ok {
			delete(s.hosts, ev.Addr)
			return true
		}
		kept := s.nets[:0]
		changed := false
		for _, n := range s.nets {
			if n.cidr == ev.Addr {
				changed = true
				continue
			}
			kept = append(kept, n)
		}
		s.nets = kept
		return changed
	}
	if strings.Contains(ev.Addr, "/") {
		if _, ipnet, err := net.ParseCIDR(ev.Addr); err == nil {
			for i := range s.nets {
				if s.nets[i].cidr == ev.Addr {
					if !laterDeadline(s.nets[i].expiry, ev.Expiry) {
						return false
					}
					s.nets[i].expiry = ev.Expiry
					return true
				}
			}
			s.nets = append(s.nets, blockedNet{cidr: ev.Addr, ipnet: ipnet, expiry: ev.Expiry})
			return true
		}
	}
	if cur, ok := s.hosts[ev.Addr]; ok {
		if !laterDeadline(cur, ev.Expiry) {
			return false
		}
	}
	s.hosts[ev.Addr] = ev.Expiry
	return true
}

// laterDeadline reports whether candidate extends the current deadline
// (zero = permanent = latest possible).
func laterDeadline(cur, candidate time.Time) bool {
	if cur.IsZero() {
		return false // already permanent; nothing extends it
	}
	if candidate.IsZero() {
		return true // permanent beats any timed deadline
	}
	return candidate.After(cur)
}

// Unblock removes a previously blocked address or CIDR.
func (s *Set) Unblock(addr string) {
	s.mu.Lock()
	delete(s.hosts, addr)
	kept := s.nets[:0]
	for _, n := range s.nets {
		if n.cidr != addr {
			kept = append(kept, n)
		}
	}
	s.nets = kept
	journal := s.journal
	s.mu.Unlock()
	if journal != nil {
		journal(Event{Unblock: true, Addr: addr})
	}
}

// Blocked reports whether ip is currently blocked, expiring stale
// entries as a side effect.
func (s *Set) Blocked(ip string) bool {
	now := s.clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if expiry, ok := s.hosts[ip]; ok {
		if expiry.IsZero() || now.Before(expiry) {
			return true
		}
		delete(s.hosts, ip)
	}
	parsed := net.ParseIP(ip)
	kept := s.nets[:0]
	blocked := false
	for _, n := range s.nets {
		if !n.expiry.IsZero() && !now.Before(n.expiry) {
			continue // expired
		}
		kept = append(kept, n)
		if parsed != nil && n.ipnet.Contains(parsed) {
			blocked = true
		}
	}
	s.nets = kept
	return blocked
}

// Entries returns the live blocks with their deadlines, sorted by
// address then expiry, so persistence snapshots and status output are
// deterministic.
func (s *Set) Entries() []Entry {
	now := s.clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Entry
	for h, expiry := range s.hosts {
		if expiry.IsZero() || now.Before(expiry) {
			out = append(out, Entry{Addr: h, Permanent: expiry.IsZero(), Expiry: expiry})
		}
	}
	for _, n := range s.nets {
		if n.expiry.IsZero() || now.Before(n.expiry) {
			out = append(out, Entry{Addr: n.cidr, Permanent: n.expiry.IsZero(), Expiry: n.expiry})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Expiry.Before(out[j].Expiry)
	})
	return out
}

// List returns the currently blocked addresses and CIDRs, in the same
// deterministic order as Entries.
func (s *Set) List() []string {
	entries := s.Entries()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Addr
	}
	return out
}

// Len returns the number of live block entries.
func (s *Set) Len() int {
	return len(s.Entries())
}
