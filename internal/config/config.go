// Package config implements the GAA-API configuration files of the
// paper's section 6 step 1: "gaa_initialize ... extract and register
// condition evaluation and policy retrieval routines from the system
// and local configuration files". A configuration file selects which
// built-in routines serve which (condition type, defining authority)
// pairs:
//
//	# type        def_auth   routine
//	condition system_threat_level local system_threat_level
//	condition regex              gnu    regex
//	condition accessid_USER      apache accessid_USER
//	action    notify             local  notify
//	action    update_log         local  update_log
//
// The routine column names a built-in from package conditions or
// package actions (the "condition" / "action" keywords are both
// accepted for either namespace; they document intent).
package config

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"gaaapi/internal/actions"
	"gaaapi/internal/conditions"
	"gaaapi/internal/gaa"
)

// Line is one registration directive.
type Line struct {
	CondType string
	DefAuth  string
	Routine  string
	// Source position for diagnostics.
	LineNo int
}

// Config is a parsed configuration file.
type Config struct {
	Lines  []Line
	Source string
}

// Parse reads a configuration file.
func Parse(r io.Reader, source string) (*Config, error) {
	cfg := &Config{Source: source}
	sc := bufio.NewScanner(r)
	n := 0
	for sc.Scan() {
		n++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] != "condition" && fields[0] != "action" {
			return nil, fmt.Errorf("%s:%d: unknown keyword %q", source, n, fields[0])
		}
		if len(fields) != 4 {
			return nil, fmt.Errorf("%s:%d: want \"%s <type> <def_auth> <routine>\"", source, n, fields[0])
		}
		cfg.Lines = append(cfg.Lines, Line{
			CondType: fields[1],
			DefAuth:  fields[2],
			Routine:  fields[3],
			LineNo:   n,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read %s: %w", source, err)
	}
	return cfg, nil
}

// ParseString parses a configuration from a string.
func ParseString(s string) (*Config, error) {
	return Parse(strings.NewReader(s), "inline")
}

// ParseFile parses the configuration stored at path.
func ParseFile(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open config: %w", err)
	}
	defer f.Close()
	return Parse(f, path)
}

// Deps carries the substrate services the registered routines need.
type Deps struct {
	Conditions conditions.Deps
	Actions    actions.Deps
}

// Apply registers every configured routine on api. Unknown routine
// names are an error (a policy referencing them would silently evaluate
// to MAYBE forever).
func (c *Config) Apply(api *gaa.API, deps Deps) error {
	for _, l := range c.Lines {
		if ev, ok := conditions.Builtin(l.Routine, deps.Conditions); ok {
			api.Register(l.CondType, l.DefAuth, ev)
			continue
		}
		if ev, ok := actions.Builtin(l.Routine, deps.Actions, api.Now); ok {
			api.Register(l.CondType, l.DefAuth, ev)
			continue
		}
		return fmt.Errorf("%s:%d: unknown routine %q", c.Source, l.LineNo, l.Routine)
	}
	return nil
}

// Default returns the configuration equivalent to registering every
// built-in under the wildcard authority (what conditions.Register and
// actions.Register do), rendered as a file for documentation purposes.
func Default() string {
	var b strings.Builder
	for _, name := range conditions.Names() {
		fmt.Fprintf(&b, "condition %s * %s\n", name, name)
	}
	b.WriteString("condition regex gnu regex\n")
	for _, name := range actions.Names() {
		fmt.Fprintf(&b, "action %s * %s\n", name, name)
	}
	return b.String()
}
