package config

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/ids"
)

func TestParseAndApply(t *testing.T) {
	cfg, err := ParseString(`
# GAA system configuration
condition system_threat_level local system_threat_level
condition regex gnu regex
action notify local notify
`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(cfg.Lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(cfg.Lines))
	}

	api := gaa.New()
	deps := Deps{}
	deps.Conditions.Threat = ids.NewManager(ids.Medium)
	if err := cfg.Apply(api, deps); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !api.Known("system_threat_level", "local") {
		t.Error("threat condition not registered")
	}
	if !api.Known("regex", "gnu") {
		t.Error("regex condition not registered")
	}
	if api.Known("regex", "other") {
		t.Error("regex registered too broadly")
	}
	if !api.Known("notify", "local") {
		t.Error("notify action not registered")
	}

	// Registered routine actually evaluates.
	e, err := eacl.ParseString(`
pos_access_right apache *
pre_cond_system_threat_level local >low
`)
	if err != nil {
		t.Fatal(err)
	}
	p := gaa.NewPolicy("/x", nil, []*eacl.EACL{e})
	ans, err := api.CheckAuthorization(context.Background(), p, gaa.NewRequest("apache", "GET /x"))
	if err != nil {
		t.Fatal(err)
	}
	if ans.Decision != gaa.Yes {
		t.Errorf("decision = %v, want yes (threat=medium > low)", ans.Decision)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct{ src, want string }{
		{"routine x y z", "unknown keyword"},
		{"condition too few", "want"},
		{"condition a b c d e", "want"},
	}
	for _, tt := range bad {
		if _, err := ParseString(tt.src); err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Errorf("ParseString(%q) err = %v, want %q", tt.src, err, tt.want)
		}
	}
}

func TestApplyUnknownRoutine(t *testing.T) {
	cfg, err := ParseString("condition phase_of_moon local lunar_module\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Apply(gaa.New(), Deps{}); err == nil {
		t.Error("want error for unknown routine")
	}
}

func TestParseFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gaa.conf")
	if err := os.WriteFile(path, []byte("condition regex gnu regex\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseFile(path)
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	if len(cfg.Lines) != 1 || cfg.Source != path {
		t.Errorf("cfg = %+v", cfg)
	}
	if _, err := ParseFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("want error for missing file")
	}
}

func TestDefaultConfigurationApplies(t *testing.T) {
	cfg, err := ParseString(Default())
	if err != nil {
		t.Fatalf("Default() does not parse: %v", err)
	}
	api := gaa.New()
	if err := cfg.Apply(api, Deps{}); err != nil {
		t.Fatalf("Default() does not apply: %v", err)
	}
	for _, pair := range [][2]string{
		{"regex", "gnu"},
		{"accessid_USER", "apache"},
		{"quota", "local"},
		{"notify", "local"},
		{"count", "local"},
	} {
		if !api.Known(pair[0], pair[1]) {
			t.Errorf("default config missing %s/%s", pair[0], pair[1])
		}
	}
}
