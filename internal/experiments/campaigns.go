package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"gaaapi/internal/scenario"
)

// CampaignPhaseBench is one phase of one campaign measured as a load
// test: the wall-clock latency distribution of the full
// firewall+guard+server path plus the phase's decision accounting.
// The shape behind BENCH_campaigns.json.
type CampaignPhaseBench struct {
	Campaign   string `json:"campaign"`
	Phase      string `json:"phase"`
	Requests   int    `json:"requests"`
	Firewalled int    `json:"firewalled"`
	// Decisions is the phase's check-phase decision delta.
	Decisions map[string]uint64 `json:"decisions"`
	// AccountingOK: check decisions == requests - firewalled held.
	AccountingOK bool `json:"accounting_ok"`
	// Checkpoint outcomes (state + traffic assertions).
	ChecksPassed int `json:"checks_passed"`
	ChecksFailed int `json:"checks_failed"`
	// Latency of Target.Do in microseconds.
	P50Micros float64 `json:"p50_us"`
	P95Micros float64 `json:"p95_us"`
	MaxMicros float64 `json:"max_us"`
	ReqPerSec float64 `json:"req_per_sec"`
}

// CampaignBench is one campaign's load-test result.
type CampaignBench struct {
	Campaign string               `json:"campaign"`
	Seed     int64                `json:"seed"`
	Passed   bool                 `json:"passed"`
	Phases   []CampaignPhaseBench `json:"phases"`
}

// CampaignResults runs every shipped campaign against a fresh
// in-process stack with timing enabled. A checkpoint failure or a
// decision-accounting mismatch does not abort the sweep — it is
// reported in the result (and by Campaigns as a non-nil error) so the
// bench run fails loudly.
func CampaignResults(opts Options) ([]CampaignBench, error) {
	seed := opts.Seed
	if seed == 0 {
		seed = scenario.DefaultSeed
	}
	var out []CampaignBench
	for _, c := range scenario.All() {
		tgt, err := scenario.NewStackTarget(c.Stack)
		if err != nil {
			return nil, fmt.Errorf("campaign %s: %w", c.Name, err)
		}
		rep, err := scenario.Run(c, tgt, scenario.Options{Seed: seed, Timing: true})
		tgt.Close()
		if err != nil {
			return nil, fmt.Errorf("campaign %s: %w", c.Name, err)
		}
		cb := CampaignBench{Campaign: c.Name, Seed: rep.Seed, Passed: rep.Passed}
		for i, ph := range rep.Phases {
			pb := CampaignPhaseBench{
				Campaign:     c.Name,
				Phase:        ph.Name,
				Requests:     ph.Requests,
				Firewalled:   ph.Firewalled,
				Decisions:    ph.Decisions,
				AccountingOK: true,
			}
			for _, ck := range ph.Checks {
				if ck.Skipped {
					continue
				}
				if ck.Passed {
					pb.ChecksPassed++
				} else {
					pb.ChecksFailed++
				}
				if ck.Name == "decision-accounting" && !ck.Passed {
					pb.AccountingOK = false
				}
			}
			if i < len(rep.Timings) {
				tm := rep.Timings[i]
				pb.P50Micros = float64(tm.P50.Nanoseconds()) / 1e3
				pb.P95Micros = float64(tm.P95.Nanoseconds()) / 1e3
				pb.MaxMicros = float64(tm.Max.Nanoseconds()) / 1e3
				pb.ReqPerSec = tm.ReqPerSec
			}
			cb.Phases = append(cb.Phases, pb)
		}
		out = append(out, cb)
	}
	return out, nil
}

// WriteCampaignsJSON emits the results as indented JSON — the
// BENCH_campaigns.json artifact.
func WriteCampaignsJSON(w io.Writer, results []CampaignBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Campaigns []CampaignBench `json:"campaigns"`
	}{results})
}

// Campaigns runs the campaign load-test sweep and prints the per-phase
// table. It returns an error — a non-zero gaa-bench exit — when any
// checkpoint or the decision accounting fails.
func Campaigns(w io.Writer, opts Options) error {
	results, err := CampaignResults(opts)
	if err != nil {
		return err
	}
	failed := 0
	fmt.Fprintf(w, "%-22s %-18s %8s %6s %9s %9s %9s %10s %s\n",
		"campaign", "phase", "requests", "fw", "p50(us)", "p95(us)", "max(us)", "req/s", "checks")
	for _, cb := range results {
		for _, pb := range cb.Phases {
			status := fmt.Sprintf("%d ok", pb.ChecksPassed)
			if pb.ChecksFailed > 0 {
				status = fmt.Sprintf("%d ok %d FAILED", pb.ChecksPassed, pb.ChecksFailed)
			}
			if !pb.AccountingOK {
				status += " ACCOUNTING-MISMATCH"
			}
			fmt.Fprintf(w, "%-22s %-18s %8d %6d %9.1f %9.1f %9.1f %10.0f %s\n",
				pb.Campaign, pb.Phase, pb.Requests, pb.Firewalled,
				pb.P50Micros, pb.P95Micros, pb.MaxMicros, pb.ReqPerSec, status)
			failed += pb.ChecksFailed
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d campaign check(s) failed", failed)
	}
	return nil
}
