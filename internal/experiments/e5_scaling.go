package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"gaaapi/internal/bench"
	"gaaapi/internal/conditions"
	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/groups"
	"gaaapi/internal/ids"
)

// E5 measures how CheckAuthorization scales with policy size: the
// number of EACL entries scanned (the request matches only the last
// entry, the worst case for the ordered scan) and the number of
// pre-conditions per entry. The expected shape is linear in both.
func E5(w io.Writer, opts Options) error {
	opts = opts.Defaults()

	api := gaa.New()
	conditions.Register(api, conditions.Deps{
		Threat: ids.NewManager(ids.Low),
		Groups: groups.NewStore(),
	})

	// syntheticPolicy builds `entries` neg entries followed by one pos
	// entry. Each neg entry carries `conds` pre-conditions: the first
	// conds-1 always match (so every condition is evaluated) and the
	// last never does (so the entry falls through) — the worst case for
	// the ordered scan.
	syntheticPolicy := func(entries, conds int) *gaa.Policy {
		var b strings.Builder
		for i := 0; i < entries; i++ {
			fmt.Fprintf(&b, "neg_access_right apache *\n")
			for c := 0; c < conds-1; c++ {
				fmt.Fprintf(&b, "pre_cond_regex gnu *\n")
			}
			fmt.Fprintf(&b, "pre_cond_regex gnu *no-match-%d*\n", i)
		}
		b.WriteString("pos_access_right apache *\n")
		e, err := eacl.ParseString(b.String())
		if err != nil {
			panic(err) // generator bug, impossible on valid input
		}
		return gaa.NewPolicy("/x", nil, []*eacl.EACL{e})
	}

	req := gaa.NewRequest("apache", "GET /index.html",
		gaa.Param{Type: gaa.ParamRequestURI, Authority: gaa.AuthorityAny, Value: "GET /index.html"})

	const perBatch = 100
	measure := func(p *gaa.Policy) bench.Stats {
		return bench.Measure(opts.Trials, func() {
			for i := 0; i < perBatch; i++ {
				if _, err := api.CheckAuthorization(context.Background(), p, req); err != nil {
					panic(err)
				}
			}
		})
	}
	perCall := func(s bench.Stats) string {
		return fmt.Sprintf("%.2f", float64(s.Mean)/perBatch/float64(time.Microsecond))
	}

	tbl := bench.Table{
		Title:  "E5a: evaluation latency vs number of entries (1 condition each)",
		Header: []string{"entries scanned", "per call (µs)"},
		Notes:  []string{fmt.Sprintf("%d trials of %d-call batches; worst case: only the last entry matches", opts.Trials, perBatch)},
	}
	for _, n := range []int{1, 4, 16, 64, 256} {
		tbl.AddRow(fmt.Sprintf("%d", n), perCall(measure(syntheticPolicy(n, 1))))
	}
	tbl.Fprint(w)

	tbl2 := bench.Table{
		Title:  "E5b: evaluation latency vs conditions per entry (16 entries)",
		Header: []string{"conditions per entry", "per call (µs)"},
	}
	for _, c := range []int{1, 2, 4, 8} {
		tbl2.AddRow(fmt.Sprintf("%d", c), perCall(measure(syntheticPolicy(16, c))))
	}
	tbl2.Fprint(w)
	return nil
}
