package experiments

import (
	"fmt"
	"io"
	"time"

	"gaaapi/internal/bench"
	"gaaapi/internal/conditions"
	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/gaahttp"
	"gaaapi/internal/groups"
	"gaaapi/internal/httpd"
	"gaaapi/internal/ids"
	"gaaapi/internal/workload"
)

// parsingSource retrieves and translates the policy text on every
// lookup — the uncached behaviour of the paper's section 6 step 2a,
// where gaa_get_object_policy_info "reads the system-wide policy file,
// converts it to the internal EACL representation" per request. The
// composed-policy cache (WithPolicyCache) sits exactly in front of
// this cost.
type parsingSource struct {
	text string
}

func (p *parsingSource) Policies(string) ([]*eacl.EACL, error) {
	e, err := eacl.ParseString(p.text)
	if err != nil {
		return nil, err
	}
	return []*eacl.EACL{e}, nil
}

func (p *parsingSource) Revision(string) (string, error) {
	return "static", nil
}

// E4 measures the paper's section 9 future-work optimization —
// "caching of the retrieved and translated policies for later reuse by
// subsequent requests" — by timing the access-control hook over the
// legitimate mix with the composed-policy cache off and on, against
// policy sources that re-translate on every retrieval (the paper's
// deployment shape: policies live in files).
func E4(w io.Writer, opts Options) error {
	opts = opts.Defaults()

	run := func(cache bool) (bench.Stats, uint64, uint64, error) {
		var apiOpts []gaa.Option
		if cache {
			apiOpts = append(apiOpts, gaa.WithPolicyCache(64))
		}
		api := gaa.New(apiOpts...)
		conditions.Register(api, conditions.Deps{
			Threat: ids.NewManager(ids.Low),
			Groups: groups.NewStore(),
		})
		guard := gaahttp.New(gaahttp.Config{
			API:    api,
			System: []gaa.PolicySource{&parsingSource{text: Policy71System}},
			Local:  []gaa.PolicySource{&parsingSource{text: Policy72LocalNoNotify}},
		})

		reqs := workload.Legit(200, opts.Seed)
		recs := make([]*httpd.RequestRec, len(reqs))
		for i, r := range reqs {
			recs[i] = httpd.NewRequestRec(r.HTTPRequest(), nil, time.Now())
		}
		stats := bench.Measure(opts.Trials, func() {
			for _, rec := range recs {
				guard.Check(rec)
			}
		})
		cs := api.CacheStats()
		return stats, cs.Hits, cs.Misses, nil
	}

	off, _, _, err := run(false)
	if err != nil {
		return err
	}
	on, hits, misses, err := run(true)
	if err != nil {
		return err
	}

	tbl := bench.Table{
		Title:  "E4: policy caching (paper section 9 future work)",
		Header: []string{"configuration", "200-request batch", "per request (µs)", "cache hits/misses"},
		Notes: []string{
			fmt.Sprintf("%d trials; policy sources re-translate per retrieval (file-backed shape)", opts.Trials),
			fmt.Sprintf("speedup with cache: %.2fx", float64(off.Mean)/float64(on.Mean)),
		},
	}
	perReq := func(s bench.Stats) string {
		return fmt.Sprintf("%.1f", float64(s.Mean)/200/float64(time.Microsecond))
	}
	tbl.AddRow("cache off", off.String(), perReq(off), "-")
	tbl.AddRow("cache on", on.String(), perReq(on), fmt.Sprintf("%d/%d", hits, misses))
	tbl.Fprint(w)
	return nil
}
