package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"gaaapi/internal/bench"
	"gaaapi/internal/conditions"
	"gaaapi/internal/gaa"
	"gaaapi/internal/gaahttp"
	"gaaapi/internal/groups"
	"gaaapi/internal/httpd"
	"gaaapi/internal/ids"
	"gaaapi/internal/metrics"
	"gaaapi/internal/workload"
)

// ObservabilityResult is one instrumented-vs-uninstrumented overhead
// measurement (BENCH_observability.json): the same hot-path scenario
// run bare and with gaa.WithMetrics, plus the metric deltas the
// instrumented run recorded (a built-in accounting check: observed
// decisions must equal ops).
type ObservabilityResult struct {
	Scenario         string  `json:"scenario"`
	Goroutines       int     `json:"goroutines"`
	Ops              int     `json:"ops"`
	BaselineNsPerOp  float64 `json:"baseline_ns_per_op"`
	InstrNsPerOp     float64 `json:"instrumented_ns_per_op"`
	OverheadPct      float64 `json:"overhead_pct"`
	InstrAllocsPerOp float64 `json:"instrumented_allocs_per_op"`
	// ObservedDecisions / ObservedLatencyCount are the check-phase
	// metric deltas over the instrumented run.
	ObservedDecisions    float64 `json:"observed_decisions"`
	ObservedLatencyCount float64 `json:"observed_latency_count"`
}

// obsScenario builds the same operation twice: bare and instrumented
// (reg non-nil). It mirrors the parallel-suite scenarios so overheads
// are comparable with BENCH_parallel.json.
type obsScenario struct {
	name  string
	ops   int
	build func(opts Options, reg *metrics.Registry) (newOp func() func() error, cleanup func(), err error)
}

func observabilityScenarios() []obsScenario {
	apiFor := func(reg *metrics.Registry) *gaa.API {
		apiOpts := []gaa.Option{gaa.WithPolicyCache(64)}
		if reg != nil {
			// The shipped-server configuration: sampled phase latency
			// (weight-compensated), exact decision counters.
			apiOpts = append(apiOpts, gaa.WithMetrics(reg),
				gaa.WithMetricsSampling(gaa.DefaultMetricsSampleShift))
		}
		api := gaa.New(apiOpts...)
		conditions.Register(api, conditions.Deps{
			Threat: ids.NewManager(ids.Low),
			Groups: groups.NewStore(),
		})
		return api
	}
	return []obsScenario{
		// The acceptance scenario: the zero-allocation cached-grant path
		// through CheckAuthorizationInto, instrumented vs bare.
		{name: "api-grant-cached", ops: 200000, build: func(opts Options, reg *metrics.Registry) (func() func() error, func(), error) {
			api := apiFor(reg)
			src := gaa.NewMemorySource()
			if err := src.AddPolicy("*", Policy72LocalNoNotify); err != nil {
				return nil, nil, err
			}
			policy, err := api.GetObjectPolicyInfo("/index.html", nil, []gaa.PolicySource{src})
			if err != nil {
				return nil, nil, err
			}
			req := gaa.NewRequest("apache", "GET /index.html",
				gaa.Param{Type: gaa.ParamRequestURI, Authority: gaa.AuthorityAny, Value: "GET /index.html"},
				gaa.Param{Type: gaa.ParamInputLength, Authority: gaa.AuthorityAny, Value: "14"})
			return func() func() error {
				ans := new(gaa.Answer)
				ctx := context.Background()
				return func() error {
					if err := api.CheckAuthorizationInto(ctx, policy, req, ans); err != nil {
						return err
					}
					if ans.Decision != gaa.Yes {
						return fmt.Errorf("decision = %v, want yes", ans.Decision)
					}
					return nil
				}
			}, func() {}, nil
		}},
		// The access-control hook with the cache on (the E4 shape).
		{name: "guard-cached", ops: 50000, build: func(opts Options, reg *metrics.Registry) (func() func() error, func(), error) {
			api := apiFor(reg)
			guard := gaahttp.New(gaahttp.Config{
				API:    api,
				System: []gaa.PolicySource{&parsingSource{text: Policy71System}},
				Local:  []gaa.PolicySource{&parsingSource{text: Policy72LocalNoNotify}},
			})
			rec := httpd.NewRequestRec(workload.Legit(1, opts.Seed)[0].HTTPRequest(), nil, time.Now())
			return func() func() error {
				return func() error {
					guard.Check(rec)
					return nil
				}
			}, func() {}, nil
		}},
	}
}

// obsReps is how many interleaved (baseline, instrumented) run pairs
// each cell takes; the minimum ns/op of each side is reported.
// Interleaving plus min-taking suppresses machine noise (GC, scheduler,
// noisy neighbours) that would otherwise dwarf a sub-100ns overhead:
// the real instrumentation cost is ~25ns/op (sampled clock reads plus
// one striped counter add) while run-to-run jitter alone can exceed
// 100ns/op.
const obsReps = 9

// ObservabilityResults measures every scenario bare and instrumented at
// each concurrency level. scale multiplies the op counts as in
// ParallelResultsScaled.
func ObservabilityResults(opts Options, scale float64) ([]ObservabilityResult, error) {
	opts = opts.Defaults()
	var out []ObservabilityResult
	for _, sc := range observabilityScenarios() {
		ops := int(float64(sc.ops) * scale)
		if ops < 1 {
			ops = 1
		}
		for _, g := range ParallelGoroutines {
			var base, instr ParallelResult
			var reg *metrics.Registry
			for rep := 0; rep < obsReps; rep++ {
				b, err := runObs(sc, opts, nil, g, ops)
				if err != nil {
					return nil, err
				}
				if rep == 0 || b.NsPerOp < base.NsPerOp {
					base = b
				}
				r := metrics.NewRegistry()
				in, err := runObs(sc, opts, r, g, ops)
				if err != nil {
					return nil, err
				}
				if rep == 0 || in.NsPerOp < instr.NsPerOp {
					instr, reg = in, r
				}
			}
			vals := reg.Values()
			decisions := vals[`gaa_decisions_total{decision="yes",phase="check"}`] +
				vals[`gaa_decisions_total{decision="no",phase="check"}`] +
				vals[`gaa_decisions_total{decision="maybe",phase="check"}`]
			out = append(out, ObservabilityResult{
				Scenario:             sc.name,
				Goroutines:           g,
				Ops:                  ops,
				BaselineNsPerOp:      base.NsPerOp,
				InstrNsPerOp:         instr.NsPerOp,
				OverheadPct:          (instr.NsPerOp - base.NsPerOp) / base.NsPerOp * 100,
				InstrAllocsPerOp:     instr.AllocsPerOp,
				ObservedDecisions:    decisions,
				ObservedLatencyCount: vals[`gaa_phase_latency_seconds_count{phase="check"}`],
			})
		}
	}
	return out, nil
}

func runObs(sc obsScenario, opts Options, reg *metrics.Registry, goroutines, ops int) (ParallelResult, error) {
	newOp, cleanup, err := sc.build(opts, reg)
	if err != nil {
		return ParallelResult{}, fmt.Errorf("%s: %w", sc.name, err)
	}
	defer cleanup()
	return measureParallel(sc.name, goroutines, ops, newOp)
}

// Observability prints the instrumentation-overhead table (cmd/gaa-bench
// -observability).
func Observability(w io.Writer, opts Options) error {
	results, err := ObservabilityResults(opts, 1)
	if err != nil {
		return err
	}
	tbl := bench.Table{
		Title:  "Metrics instrumentation overhead (bare vs gaa.WithMetrics)",
		Header: []string{"scenario", "goroutines", "bare ns/op", "instr ns/op", "overhead %", "allocs/op", "decisions"},
		Notes: []string{
			fmt.Sprintf("GOMAXPROCS=%d; per-phase latency histograms + decision counters on", runtime.GOMAXPROCS(0)),
			"decisions column is the instrumented run's own counter delta (must equal ops)",
		},
	}
	for _, r := range results {
		tbl.AddRow(r.Scenario, fmt.Sprintf("%d", r.Goroutines),
			fmt.Sprintf("%.0f", r.BaselineNsPerOp), fmt.Sprintf("%.0f", r.InstrNsPerOp),
			fmt.Sprintf("%+.1f", r.OverheadPct), fmt.Sprintf("%.2f", r.InstrAllocsPerOp),
			fmt.Sprintf("%.0f", r.ObservedDecisions))
	}
	tbl.Fprint(w)
	return nil
}

// WriteObservabilityJSON emits the results as indented JSON
// (BENCH_observability.json).
func WriteObservabilityJSON(w io.Writer, results []ObservabilityResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
