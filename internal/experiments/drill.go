package experiments

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"gaaapi/internal/faults"
	"gaaapi/internal/gaahttp"
	"gaaapi/internal/statestore"
	"gaaapi/internal/workload"
)

// FaultDrillOptions configures a fault drill (gaa-bench -drill).
type FaultDrillOptions struct {
	// Requests is the workload size (default 400).
	Requests int
	// Seed drives both the workload and the fault injectors.
	Seed int64
	// EvalSpec / NotifySpec are the injection probabilities for
	// condition evaluators and the notification transport.
	EvalSpec, NotifySpec faults.Spec
	// DiskSpec disturbs the crash-safe state store (short writes, fsync
	// errors); when active the drill runs with a temporary -state-dir
	// and additionally verifies that the torn journal still recovers.
	DiskSpec faults.Spec
	// StateDir hosts the drill's state store when DiskSpec is active
	// (required then — the caller owns the directory's lifetime).
	StateDir string
	// Timeout is the per-evaluator deadline (default 25ms); it is what
	// cuts injected hangs off.
	Timeout time.Duration
}

func (o FaultDrillOptions) defaults() FaultDrillOptions {
	if o.Requests <= 0 {
		o.Requests = 400
	}
	if o.Seed == 0 {
		o.Seed = 2003
	}
	if o.Timeout <= 0 {
		o.Timeout = 25 * time.Millisecond
	}
	return o
}

// FaultDrill replays the section 7.2 deployment's workload (legitimate
// mix plus the attack classes) while the configured injectors disturb
// condition evaluators and the notification transport, and verifies
// the robustness contract: every request is answered (no crashes, no
// stalls past the deadline budget), injected evaluator faults degrade
// to MAYBE decisions rather than 5xx responses, and the circuit
// breaker keeps a dead notifier off the hot path. It returns an error
// — for CI — when the contract is violated.
func FaultDrill(w io.Writer, o FaultDrillOptions) error {
	o = o.defaults()

	evalInj := faults.New(o.Seed, o.EvalSpec)
	notifyInj := faults.New(o.Seed+1, o.NotifySpec)
	diskInj := faults.New(o.Seed+2, o.DiskSpec)

	cfg := gaahttp.StackConfig{
		SystemPolicy:     Policy72System,
		LocalPolicies:    map[string]string{"*": Policy72Local},
		DocRoot:          workload.DocRoot(),
		PolicyCache:      true,
		EvaluatorTimeout: o.Timeout,
		EvaluatorWrapper: evalInj.Evaluator,
		NotifierWrapper:  notifyInj.Notifier,
		ReliableNotify:   true,
	}
	if o.DiskSpec.Active() {
		if o.StateDir == "" {
			return fmt.Errorf("fault drill: disk injection needs a state directory")
		}
		cfg.StateDir = o.StateDir
		cfg.StoreFS = diskInj.FS(statestore.OS)
	}
	st, err := gaahttp.NewStack(cfg)
	if err != nil {
		return err
	}
	defer st.Close()

	// Workload: legitimate browsing with every attack class woven in.
	legit := workload.Legit(o.Requests, o.Seed)
	mix := workload.Interleave(o.Seed, legit, workload.AttackMix())

	statuses := make(map[int]int)
	crashed := 0
	var slowest time.Duration
	start := time.Now()
	for _, r := range mix {
		t0 := time.Now()
		rec := httptest.NewRecorder()
		st.Server.ServeHTTP(rec, r.HTTPRequest())
		if d := time.Since(t0); d > slowest {
			slowest = d
		}
		statuses[rec.Code]++
		if rec.Code >= http.StatusInternalServerError {
			crashed++
		}
	}
	elapsed := time.Since(start)

	sup := st.API.SupervisionStats()
	es, ns := evalInj.Stats(), notifyInj.Stats()
	rs := st.Reliable.Stats()

	fmt.Fprintf(w, "fault drill: %d requests in %v (slowest %v)\n", len(mix), elapsed.Round(time.Millisecond), slowest.Round(time.Millisecond))
	fmt.Fprintf(w, "  injected: evaluators[%s] hangs=%d panics=%d errors=%d latencies=%d\n",
		o.EvalSpec, es.Hangs, es.Panics, es.Errors, es.Latencies)
	fmt.Fprintf(w, "            notifier[%s] hangs=%d panics=%d errors=%d latencies=%d\n",
		o.NotifySpec, ns.Hangs, ns.Panics, ns.Errors, ns.Latencies)
	if o.DiskSpec.Active() {
		ds := diskInj.Stats()
		fmt.Fprintf(w, "            disk[%s] short-writes=%d sync-errors=%d journal-errors=%d\n",
			o.DiskSpec, ds.ShortWrites, ds.SyncErrors, st.Persist.JournalErrors())
	}
	fmt.Fprintf(w, "  supervised: timeouts=%d panics=%d errors=%d invalid=%d\n",
		sup.Timeouts, sup.Panics, sup.Errors, sup.Invalid)
	fmt.Fprintf(w, "  notifier: delivered=%d failures=%d retries=%d short-circuits=%d breaker=%s opens=%d\n",
		rs.Delivered, rs.Failures, rs.Retries, rs.ShortCircuits, rs.Breaker, rs.BreakerOpens)
	for _, code := range []int{200, 302, 401, 403, 404} {
		if n := statuses[code]; n > 0 {
			fmt.Fprintf(w, "  status %d: %d\n", code, n)
		}
	}
	for code, n := range statuses {
		if code >= 500 {
			fmt.Fprintf(w, "  status %d: %d  <-- CRASHED\n", code, n)
		}
	}

	if crashed > 0 {
		return fmt.Errorf("fault drill: %d request(s) crashed (5xx) under injection", crashed)
	}
	if got := sum(statuses); got != len(mix) {
		return fmt.Errorf("fault drill: %d of %d requests unanswered", len(mix)-got, len(mix))
	}
	// A hung evaluator must be cut at the deadline: with every injected
	// hang supervised, no single request may stall for more than the
	// per-request condition budget (a generous multiple of the
	// deadline covers multi-condition entries plus scheduling noise).
	if budget := 20 * o.Timeout; es.Hangs > 0 && slowest > budget {
		return fmt.Errorf("fault drill: slowest request %v exceeded the deadline budget %v", slowest, budget)
	}
	if es.Hangs > 0 && sup.Timeouts == 0 {
		return fmt.Errorf("fault drill: %d hangs injected but no supervised timeout recorded", es.Hangs)
	}
	if es.Panics > 0 && sup.Panics == 0 {
		return fmt.Errorf("fault drill: %d panics injected but none recovered", es.Panics)
	}

	// Disk-fault contract: whatever the injected short writes and fsync
	// errors left on disk, a fresh store must recover the valid journal
	// prefix without erroring (torn tails are truncated, not fatal).
	if o.DiskSpec.Active() {
		st.Close() // the deferred Close is an idempotent no-op
		check, err := statestore.Open(o.StateDir, statestore.Options{})
		if err != nil {
			return fmt.Errorf("fault drill: torn state store failed to recover: %w", err)
		}
		rec := check.Recovery()
		check.Close()
		fmt.Fprintf(w, "  state recovery: snapshot=%v replayed=%d dup-skipped=%d dropped=%dB\n",
			rec.SnapshotLoaded, rec.Replayed, rec.SkippedDuplicates, rec.DroppedBytes)
	}
	return nil
}

func sum(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
