package experiments

import (
	"fmt"
	"io"
	"net/http/httptest"
	"strings"

	"gaaapi/internal/bench"
	"gaaapi/internal/gaahttp"
	"gaaapi/internal/httpd"
	"gaaapi/internal/ids"
	"gaaapi/internal/logscan"
	"gaaapi/internal/workload"
)

// E9 reproduces the paper's section 10 argument against offline log
// analysis (Almgren et al.): the same attack workload is replayed
// against (a) an unprotected server whose CLF log is scanned offline
// afterwards, and (b) the GAA-protected server. Both detect every
// attack; the difference is the damage window — offline detection sees
// the attacks only after the vulnerable scripts have executed ("the
// monitor can not directly interact with a web server and, thus, can
// not stop the ongoing attacks"), while the integrated approach blocks
// them before execution.
func E9(w io.Writer, opts Options) error {
	opts = opts.Defaults()
	attacks := workload.AttackMix()

	// (a) Unprotected server, offline scan of its access log.
	var clf strings.Builder
	naked := httpd.NewServer(httpd.Config{
		DocRoot:   workload.DocRoot(),
		Scripts:   httpd.NewDemoRegistry(),
		AccessLog: &clf,
	})
	leaked := 0
	for _, atk := range attacks {
		rec := httptest.NewRecorder()
		naked.ServeHTTP(rec, atk.HTTPRequest())
		if strings.Contains(rec.Body.String(), "root:x:0:0") {
			leaked++ // the phf exploit actually disclosed data
		}
	}
	scanner := logscan.NewScanner(ids.NewDB(ids.DefaultSignatures()...))
	findings, _, _, err := scanner.Scan(strings.NewReader(clf.String()))
	if err != nil {
		return err
	}
	offlineDetected := make(map[string]bool)
	offlineExecuted := 0
	for _, f := range findings {
		offlineDetected[f.Signature.Name] = true
		if f.Executed {
			offlineExecuted++
		}
	}

	// (b) GAA-protected server.
	st, err := gaahttp.NewStack(gaahttp.StackConfig{
		SystemPolicy:  Policy72System,
		LocalPolicies: map[string]string{"*": Policy72Local},
		DocRoot:       workload.DocRoot(),
	})
	if err != nil {
		return err
	}
	defer st.Close()
	onlineBlocked, onlineLeaked := 0, 0
	for _, atk := range attacks {
		rec := httptest.NewRecorder()
		st.Server.ServeHTTP(rec, atk.HTTPRequest())
		if rec.Code == 403 {
			onlineBlocked++
		}
		if strings.Contains(rec.Body.String(), "root:x:0:0") {
			onlineLeaked++
		}
	}

	tbl := bench.Table{
		Title:  "E9: online (GAA) vs offline (CLF scan) detection (paper section 10)",
		Header: []string{"approach", "attacks detected", "executed before detection", "data leaked"},
		Notes: []string{
			fmt.Sprintf("workload: %d attack requests (one per class) against the vulnerable CGI set", len(attacks)),
			"offline = Almgren-style signature scan over the access log after the fact",
			"paper: the offline monitor \"can not stop the ongoing attacks\"; the integration blocks them pre-execution",
		},
	}
	tbl.AddRow("offline log scan",
		fmt.Sprintf("%d/%d classes", len(offlineDetected), len(attacks)),
		fmt.Sprintf("%d", offlineExecuted),
		fmt.Sprintf("%d request(s)", leaked))
	tbl.AddRow("GAA-API integration",
		fmt.Sprintf("%d/%d classes", onlineBlocked, len(attacks)),
		"0",
		fmt.Sprintf("%d request(s)", onlineLeaked))
	tbl.Fprint(w)

	if onlineLeaked != 0 || onlineBlocked != len(attacks) {
		return fmt.Errorf("E9: online protection failed (blocked %d, leaked %d)", onlineBlocked, onlineLeaked)
	}
	if leaked == 0 {
		return fmt.Errorf("E9: substrate not vulnerable; comparison is vacuous")
	}
	return nil
}
