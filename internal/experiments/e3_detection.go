package experiments

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"

	"gaaapi/internal/bench"
	"gaaapi/internal/gaahttp"
	"gaaapi/internal/workload"
)

// E3 reproduces the paper's section 7.2 deployment as a measured
// detection table: each attack class must be denied before execution,
// blacklist its source, and (for the notification entries) alert the
// administrator; a follow-up probe with an unknown signature from a
// blacklisted source must also be denied ("subsequent requests from
// that host, checking for vulnerabilities we might not yet know about,
// can still be blocked"); and legitimate traffic must flow with zero
// false positives.
func E3(w io.Writer, opts Options) error {
	opts = opts.Defaults()
	st, err := gaahttp.NewStack(gaahttp.StackConfig{
		SystemPolicy:  Policy72System,
		LocalPolicies: map[string]string{"*": Policy72Local},
		DocRoot:       workload.DocRoot(),
	})
	if err != nil {
		return err
	}
	defer st.Close()

	serve := func(r workload.Request) int {
		rec := httptest.NewRecorder()
		st.Server.ServeHTTP(rec, r.HTTPRequest())
		return rec.Code
	}

	tbl := bench.Table{
		Title:  "E3: application-level intrusion detection (paper section 7.2)",
		Header: []string{"attack class", "blocked", "blacklisted", "notified", "follow-up blocked"},
	}

	failures := 0
	for _, atk := range workload.AttackMix() {
		before := st.Mailbox.Count()
		code := serve(atk)
		blocked := code == http.StatusForbidden
		blacklisted := st.Groups.Contains("BadGuys", atk.ClientIP)
		notified := st.Mailbox.Count() > before
		// Unknown-signature follow-up from the same source.
		followCode := serve(workload.Request{
			Method: "GET", Target: "/cgi-bin/search?q=zero-day", ClientIP: atk.ClientIP,
		})
		followBlocked := followCode == http.StatusForbidden
		if !blocked || !blacklisted || !followBlocked {
			failures++
		}
		tbl.AddRow(atk.Attack, yesNo(blocked), yesNo(blacklisted), yesNo(notified), yesNo(followBlocked))
	}

	// Legitimate traffic: false positives.
	legit := workload.Legit(200, opts.Seed)
	falsePositives := 0
	for _, r := range legit {
		if serve(r) != http.StatusOK {
			falsePositives++
		}
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("legitimate requests: %d, false positives: %d (%s)",
			len(legit), falsePositives, pct(100*float64(falsePositives)/float64(len(legit)))),
		"blacklist size after run: "+strconv.Itoa(st.Groups.Len("BadGuys")),
		"paper expectation: every class blocked before execution, sources blacklisted, unknown follow-ups blocked",
	)
	tbl.Fprint(w)
	if failures > 0 || falsePositives > 0 {
		return fmt.Errorf("E3: %d detection failures, %d false positives", failures, falsePositives)
	}
	return nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
