package experiments

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"

	"gaaapi/internal/bench"
	"gaaapi/internal/gaahttp"
	"gaaapi/internal/ids"
	"gaaapi/internal/workload"
)

// E2 reproduces the paper's section 7.1 network-lockdown deployment as
// a behaviour matrix: for each system threat level and client class
// (anonymous, bad credentials, authenticated) it records the HTTP
// outcome. The expected shape: at low threat the native mixed access
// applies (public objects open); above low every access requires
// authentication; at high threat the mandatory system-wide policy
// denies everyone.
func E2(w io.Writer, opts Options) error {
	opts = opts.Defaults()
	st, err := gaahttp.NewStack(gaahttp.StackConfig{
		SystemPolicy:  Policy71System,
		LocalPolicies: map[string]string{"*": Policy71Local},
		DocRoot:       workload.DocRoot(),
		Htaccess: map[string]string{
			// Native mixed access: /docs needs auth even in peacetime.
			"docs": "Require valid-user\n",
		},
		Users: map[string]string{"alice": "wonderland"},
	})
	if err != nil {
		return err
	}
	defer st.Close()

	do := func(target, user, pass string) int {
		req := httptest.NewRequest("GET", target, nil)
		req.RemoteAddr = "10.0.1.50:40000"
		if user != "" {
			req.SetBasicAuth(user, pass)
		}
		rec := httptest.NewRecorder()
		st.Server.ServeHTTP(rec, req)
		return rec.Code
	}

	tbl := bench.Table{
		Title:  "E2: network lockdown behaviour (paper section 7.1)",
		Header: []string{"threat level", "client", "GET /index.html", "GET /docs/guide.html", "expected"},
		Notes: []string{
			"/docs requires auth natively (.htaccess); /index.html is public",
			"low: GAA declines -> native access control; medium: lockdown (401 until authenticated); high: mandatory deny (403)",
		},
	}

	clients := []struct {
		name       string
		user, pass string
	}{
		{"anonymous", "", ""},
		{"bad password", "alice", "wrong"},
		{"authenticated", "alice", "wonderland"},
	}
	expected := map[string]map[string][2]int{
		"low": {
			"anonymous":     {http.StatusOK, http.StatusUnauthorized},
			"bad password":  {http.StatusOK, http.StatusUnauthorized},
			"authenticated": {http.StatusOK, http.StatusOK},
		},
		"medium": {
			"anonymous":     {http.StatusUnauthorized, http.StatusUnauthorized},
			"bad password":  {http.StatusUnauthorized, http.StatusUnauthorized},
			"authenticated": {http.StatusOK, http.StatusOK},
		},
		"high": {
			"anonymous":     {http.StatusForbidden, http.StatusForbidden},
			"bad password":  {http.StatusForbidden, http.StatusForbidden},
			"authenticated": {http.StatusForbidden, http.StatusForbidden},
		},
	}

	mismatches := 0
	for _, level := range []ids.Level{ids.Low, ids.Medium, ids.High} {
		st.Threat.Set(level)
		for _, c := range clients {
			home := do("/index.html", c.user, c.pass)
			docs := do("/docs/guide.html", c.user, c.pass)
			want := expected[level.String()][c.name]
			status := "ok"
			if home != want[0] || docs != want[1] {
				status = fmt.Sprintf("MISMATCH (want %d/%d)", want[0], want[1])
				mismatches++
			}
			tbl.AddRow(level.String(), c.name,
				fmt.Sprintf("%d", home), fmt.Sprintf("%d", docs), status)
		}
	}
	tbl.Fprint(w)
	if mismatches > 0 {
		return fmt.Errorf("E2: %d behaviour mismatches", mismatches)
	}
	return nil
}
