// Package experiments implements the reproduction experiments indexed
// in DESIGN.md section 4: E1 is the paper's section 8 performance
// table; E2/E3 promote the section 7 deployment scenarios to measured
// behaviour tables; E4–E8 are ablations for the design choices the
// paper names (policy caching, policy size, composition modes,
// execution control, anomaly detection).
//
// Each experiment is a function from Options to one or more
// bench.Tables, so cmd/gaa-bench can print them and the root benchmark
// suite can assert on them.
package experiments

import (
	"fmt"
	"io"
	"time"
)

// Options tunes experiment execution.
type Options struct {
	// Trials is the number of measurement repetitions (paper protocol:
	// 20).
	Trials int
	// NotifyLatency is the synthetic mail-delivery latency for the
	// "with notification" configurations. The paper's testbed showed
	// notification adding ~47 ms to both the GAA-only and total times;
	// the default reproduces that constant.
	NotifyLatency time.Duration
	// Seed drives the deterministic workload generators.
	Seed int64
}

// Defaults fills zero fields.
func (o Options) Defaults() Options {
	if o.Trials <= 0 {
		o.Trials = 20
	}
	if o.NotifyLatency <= 0 {
		o.NotifyLatency = 47 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 2003
	}
	return o
}

// Runner is one experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(w io.Writer, opts Options) error
}

// All returns every experiment in index order.
func All() []Runner {
	return []Runner{
		{"e1", "Paper section 8: GAA-API overhead", E1},
		{"e2", "Paper section 7.1: network lockdown behaviour", E2},
		{"e3", "Paper section 7.2: application-level intrusion detection", E3},
		{"e4", "Ablation: policy caching (paper section 9 future work)", E4},
		{"e5", "Ablation: evaluation latency vs policy size", E5},
		{"e6", "Paper section 2.1: composition modes", E6},
		{"e7", "Execution control: mid-condition quotas", E7},
		{"e8", "Anomaly detection (paper section 9 future work)", E8},
		{"e9", "Online vs offline detection (paper section 10 related work)", E9},
		{"e10", "Adaptive constraints: runtime values tuned by threat level", E10},
		{"e11", "Server throughput with and without the GAA guard", E11},
	}
}

// Find returns the runner with the given id.
func Find(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// pct renders a percentage with one decimal.
func pct(v float64) string {
	return fmt.Sprintf("%.1f%%", v)
}
