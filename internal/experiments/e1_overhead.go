package experiments

import (
	"fmt"
	"io"
	"net/http/httptest"
	"time"

	"gaaapi/internal/bench"
	"gaaapi/internal/gaahttp"
	"gaaapi/internal/httpd"
	"gaaapi/internal/workload"
)

// E1 reproduces the paper's section 8 experiment: with the section 7.1
// system-wide policy and the section 7.2 local policy installed, it
// measures (a) the GAA-API functions alone and (b) the whole server
// request including them, each with and without notification, over 20
// trials, and reports the GAA share of the request time — the paper's
// "overhead" (5.9/19.4 ≈ 30% without notification, 53.3/66.8 ≈ 80%
// with).
//
// The measured request is a phf probe, the request class whose entry
// carries the notification condition (a request that does not fire it
// shows the without-notification cost by construction). Absolute
// milliseconds differ from the paper's 1.8 GHz Pentium 4; the
// notification delta and the overhead ratios are the reproduced shape.
func E1(w io.Writer, opts Options) error {
	opts = opts.Defaults()

	type cell struct {
		gaa   bench.Stats
		total bench.Stats
	}
	run := func(localPolicy string, latency time.Duration, async bool) (cell, error) {
		st, err := gaahttp.NewStack(gaahttp.StackConfig{
			SystemPolicy:  Policy71System,
			LocalPolicies: map[string]string{"*": localPolicy},
			DocRoot:       workload.DocRoot(),
			NotifyLatency: latency,
			AsyncNotify:   async,
		})
		if err != nil {
			return cell{}, err
		}
		defer st.Close()

		attack := workload.PhfScan("192.0.2.66")
		var out cell

		// (a) GAA-API functions alone: the modified check-access hook.
		rec := httpd.NewRequestRec(attack.HTTPRequest(), nil, time.Now())
		out.gaa = bench.Measure(opts.Trials, func() {
			st.Groups.Remove("BadGuys", attack.ClientIP) // keep the scenario identical per trial
			st.Guard.Check(rec)
		})

		// (b) the whole request through the server.
		out.total = bench.Measure(opts.Trials, func() {
			st.Groups.Remove("BadGuys", attack.ClientIP)
			st.Server.ServeHTTP(httptest.NewRecorder(), attack.HTTPRequest())
		})
		return out, nil
	}

	without, err := run(Policy72LocalNoNotify, 0, false)
	if err != nil {
		return err
	}
	with, err := run(Policy72Local, opts.NotifyLatency, false)
	if err != nil {
		return err
	}
	// Extension beyond the paper: asynchronous notification delivery
	// removes the latency from the request path — the obvious fix for
	// the paper's 80% figure, quantified.
	withAsync, err := run(Policy72Local, opts.NotifyLatency, true)
	if err != nil {
		return err
	}

	tbl := bench.Table{
		Title:  "E1: GAA-API cost per request (paper section 8)",
		Header: []string{"measurement", "without notification", "with notification", "async notification", "paper (ms)"},
		Notes: []string{
			fmt.Sprintf("%d trials per cell; synthetic notification latency %v", opts.Trials, opts.NotifyLatency),
			"paper testbed: 1.8 GHz Pentium 4, RedHat 7.1 — compare ratios, not absolute ms",
			"async notification is this reproduction's extension: delivery off the request path",
		},
	}
	tbl.AddRow("GAA-API functions (ms)", without.gaa.Millis(), with.gaa.Millis(), withAsync.gaa.Millis(), "5.9 / 53.3 / -")
	tbl.AddRow("whole request incl. GAA (ms)", without.total.Millis(), with.total.Millis(), withAsync.total.Millis(), "19.4 / 66.8 / -")
	tbl.AddRow("GAA share of request",
		pct(100*float64(without.gaa.Mean)/float64(without.total.Mean)),
		pct(100*float64(with.gaa.Mean)/float64(with.total.Mean)),
		pct(100*float64(withAsync.gaa.Mean)/float64(withAsync.total.Mean)),
		"30% / 80% / -")
	tbl.Fprint(w)
	return nil
}
