package experiments

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"gaaapi/internal/bench"
	"gaaapi/internal/gaahttp"
	"gaaapi/internal/httpd"
	"gaaapi/internal/workload"
)

// E11 complements E1's per-request latency with server throughput: the
// legitimate mix is replayed by concurrent workers against (a) the
// native htaccess baseline alone and (b) the same server with the
// GAA guard in front (the paper's integration). The throughput drop is
// the capacity price of integrated detection; with notification off it
// should mirror E1's no-notification overhead.
func E11(w io.Writer, opts Options) error {
	opts = opts.Defaults()

	const workers = 8
	const perWorker = 250

	run := func(withGAA bool) (reqPerSec float64, err error) {
		st, err := gaahttp.NewStack(gaahttp.StackConfig{
			SystemPolicy:  Policy71System,
			LocalPolicies: map[string]string{"*": Policy72LocalNoNotify},
			DocRoot:       workload.DocRoot(),
			PolicyCache:   true,
		})
		if err != nil {
			return 0, err
		}
		defer st.Close()

		var server http.Handler = st.Server
		if !withGAA {
			// The baseline configuration: same server, no GAA guard.
			server = httpd.NewServer(httpd.Config{
				DocRoot: workload.DocRoot(),
				Scripts: httpd.NewDemoRegistry(),
			})
		}

		// Per-worker request streams, prepared outside the timed region.
		streams := make([][]workload.Request, workers)
		for i := range streams {
			streams[i] = workload.Legit(perWorker, opts.Seed+int64(i))
		}

		start := time.Now()
		var wg sync.WaitGroup
		errCh := make(chan error, workers)
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(stream []workload.Request) {
				defer wg.Done()
				for _, r := range stream {
					rec := httptest.NewRecorder()
					server.ServeHTTP(rec, r.HTTPRequest())
					if rec.Code != http.StatusOK {
						errCh <- fmt.Errorf("unexpected status %d for %s", rec.Code, r.Target)
						return
					}
				}
			}(streams[i])
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errCh:
			return 0, err
		default:
		}
		return float64(workers*perWorker) / elapsed.Seconds(), nil
	}

	baseline, err := run(false)
	if err != nil {
		return err
	}
	withGAA, err := run(true)
	if err != nil {
		return err
	}

	tbl := bench.Table{
		Title:  "E11: server throughput with and without the GAA guard",
		Header: []string{"configuration", "throughput (req/s)", "relative"},
		Notes: []string{
			fmt.Sprintf("%d workers × %d legitimate requests each; notification off; policy cache on", workers, perWorker),
			fmt.Sprintf("capacity cost of integrated detection: %s", pct(100*(1-withGAA/baseline))),
		},
	}
	tbl.AddRow("htaccess baseline only", fmt.Sprintf("%.0f", baseline), "1.00x")
	tbl.AddRow("GAA guard + baseline", fmt.Sprintf("%.0f", withGAA), fmt.Sprintf("%.2fx", withGAA/baseline))
	tbl.Fprint(w)
	return nil
}
