package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gaaapi/internal/bench"
	"gaaapi/internal/conditions"
	"gaaapi/internal/gaa"
	"gaaapi/internal/gaahttp"
	"gaaapi/internal/groups"
	"gaaapi/internal/httpd"
	"gaaapi/internal/ids"
	"gaaapi/internal/ids/adaptive"
	"gaaapi/internal/workload"
)

// ParallelGoroutines are the concurrency levels the parallel suite
// sweeps (cmd/gaa-bench -parallel).
var ParallelGoroutines = []int{1, 4, 16}

// ParallelResult is one (scenario, concurrency) measurement of the
// decision hot path, the machine-readable shape behind
// BENCH_parallel.json.
type ParallelResult struct {
	Scenario    string  `json:"scenario"`
	Goroutines  int     `json:"goroutines"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	ReqPerSec   float64 `json:"req_per_sec"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// measureParallel runs ops operations spread over the given number of
// goroutines. newOp builds a per-goroutine operation closure, so each
// worker can hold goroutine-local state (a reused Answer, say) without
// synchronization. Allocation figures come from the runtime's exact
// Mallocs/TotalAlloc counters around the timed region.
func measureParallel(scenario string, goroutines, ops int, newOp func() func() error) (ParallelResult, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	var (
		wg    sync.WaitGroup
		next  atomic.Int64
		errMu sync.Mutex
		err   error
	)
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			op := newOp()
			for next.Add(1) <= int64(ops) {
				if e := op(); e != nil {
					errMu.Lock()
					if err == nil {
						err = e
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return ParallelResult{}, fmt.Errorf("%s at %d goroutines: %w", scenario, goroutines, err)
	}

	n := float64(ops)
	return ParallelResult{
		Scenario:    scenario,
		Goroutines:  goroutines,
		Ops:         ops,
		NsPerOp:     float64(elapsed.Nanoseconds()) / n,
		ReqPerSec:   n / elapsed.Seconds(),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / n,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / n,
	}, nil
}

// parallelScenario is one hot-path configuration swept over
// ParallelGoroutines.
type parallelScenario struct {
	name string
	ops  int
	// build assembles the scenario once; the returned factory is handed
	// to measureParallel per concurrency level.
	build func(opts Options) (newOp func() func() error, cleanup func(), err error)
}

func parallelScenarios() []parallelScenario {
	return []parallelScenario{
		// The E4 shape: the access-control hook against file-shaped
		// (re-translating) sources with the composed-policy cache on.
		// The adaptive scorer is wired in async mode (the production
		// -adaptive shape), so the measured path carries the full
		// detector feed — the bench guard thereby pins that enabling
		// detection keeps the cached path inside the envelope.
		{name: "guard-cached", ops: 50000, build: func(opts Options) (func() func() error, func(), error) {
			api := gaa.New(gaa.WithPolicyCache(64))
			conditions.Register(api, conditions.Deps{
				Threat: ids.NewManager(ids.Low),
				Groups: groups.NewStore(),
			})
			scorer := adaptive.New(adaptive.Defaults(), nil, nil)
			guard := gaahttp.New(gaahttp.Config{
				API:    api,
				System: []gaa.PolicySource{&parsingSource{text: Policy71System}},
				Local:  []gaa.PolicySource{&parsingSource{text: Policy72LocalNoNotify}},
				Scorer: scorer,
			})
			rec := httpd.NewRequestRec(workload.Legit(1, opts.Seed)[0].HTTPRequest(), nil, time.Now())
			return func() func() error {
				return func() error {
					guard.Check(rec)
					return nil
				}
			}, func() { scorer.Close() }, nil
		}},
		// guard-cached without the composed-policy cache: every check
		// re-retrieves and re-composes the policy from stable in-memory
		// sources, so the figure isolates composition + decision cost.
		// (Stable sources keep the compiled-program cache warm, as a
		// SwappableSource deployment would.)
		{name: "guard-uncached", ops: 20000, build: func(opts Options) (func() func() error, func(), error) {
			api := gaa.New()
			conditions.Register(api, conditions.Deps{
				Threat: ids.NewManager(ids.Low),
				Groups: groups.NewStore(),
			})
			sys := gaa.NewMemorySource()
			if err := sys.AddPolicy("*", Policy71System); err != nil {
				return nil, nil, err
			}
			loc := gaa.NewMemorySource()
			if err := loc.AddPolicy("*", Policy72LocalNoNotify); err != nil {
				return nil, nil, err
			}
			scorer := adaptive.New(adaptive.Defaults(), nil, nil)
			guard := gaahttp.New(gaahttp.Config{
				API:    api,
				System: []gaa.PolicySource{sys},
				Local:  []gaa.PolicySource{loc},
				Scorer: scorer,
			})
			rec := httpd.NewRequestRec(workload.Legit(1, opts.Seed)[0].HTTPRequest(), nil, time.Now())
			return func() func() error {
				return func() error {
					guard.Check(rec)
					return nil
				}
			}, func() { scorer.Close() }, nil
		}},
		// The core three-phase entry point alone: a trace-disabled grant
		// on a cached policy through CheckAuthorizationInto, each worker
		// reusing its own Answer (the zero-allocation fast path).
		{name: "api-grant-cached", ops: 200000, build: func(opts Options) (func() func() error, func(), error) {
			api := gaa.New(gaa.WithPolicyCache(64))
			conditions.Register(api, conditions.Deps{
				Threat: ids.NewManager(ids.Low),
				Groups: groups.NewStore(),
			})
			src := gaa.NewMemorySource()
			if err := src.AddPolicy("*", Policy72LocalNoNotify); err != nil {
				return nil, nil, err
			}
			policy, err := api.GetObjectPolicyInfo("/index.html", nil, []gaa.PolicySource{src})
			if err != nil {
				return nil, nil, err
			}
			req := gaa.NewRequest("apache", "GET /index.html",
				gaa.Param{Type: gaa.ParamRequestURI, Authority: gaa.AuthorityAny, Value: "GET /index.html"},
				gaa.Param{Type: gaa.ParamInputLength, Authority: gaa.AuthorityAny, Value: "14"})
			return func() func() error {
				ans := new(gaa.Answer)
				ctx := context.Background()
				return func() error {
					if err := api.CheckAuthorizationInto(ctx, policy, req, ans); err != nil {
						return err
					}
					if ans.Decision != gaa.Yes {
						return fmt.Errorf("decision = %v, want yes", ans.Decision)
					}
					return nil
				}
			}, func() {}, nil
		}},
		// The decision engine with no caching anywhere: the policy is
		// re-retrieved per op and the answer recomputed. The compiled
		// first-match program carries the evaluation...
		{name: "api-grant-uncached", ops: 50000, build: buildAPIGrantUncached(true)},
		// ...and the same scenario on the interpreted per-entry scan,
		// the before/after pair for the compiled engine.
		{name: "api-grant-interp", ops: 50000, build: buildAPIGrantUncached(false)},
		// The E11 shape: whole requests through the guarded server.
		{name: "server-e11", ops: 10000, build: func(opts Options) (func() func() error, func(), error) {
			st, err := gaahttp.NewStack(gaahttp.StackConfig{
				SystemPolicy:  Policy71System,
				LocalPolicies: map[string]string{"*": Policy72LocalNoNotify},
				DocRoot:       workload.DocRoot(),
				PolicyCache:   true,
			})
			if err != nil {
				return nil, nil, err
			}
			r := workload.Legit(1, opts.Seed)[0]
			return func() func() error {
				// Per-worker reusable response sink and a prebuilt
				// request, so the figure is the server's own cost, not
				// the recorder harness's.
				w := newNullResponse()
				hr := r.HTTPRequest()
				return func() error {
					w.reset()
					st.Server.ServeHTTP(w, hr)
					if w.code != http.StatusOK {
						return fmt.Errorf("status %d for %s", w.code, r.Target)
					}
					return nil
				}
			}, st.Close, nil
		}},
	}
}

// signatureSweepPolicy is the uncached-grant workload: the section 7.2
// signature list grown to a realistic IDS signature database — n
// per-path deny entries (each guarding one known-exploit URL prefix),
// the paper's buffer-overflow detector, then the allow-everything-else
// entry. A legitimate request matches none of the deny rights, which
// is precisely the shape the compiled first-match trie prunes and the
// interpreted scan pays O(entries) for.
func signatureSweepPolicy(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "neg_access_right apache GET /cgi-bin/sig%d*\npre_cond_system_threat_level local >low\n", i)
	}
	b.WriteString("neg_access_right apache *\npre_cond_expr local input_length>1000\npos_access_right apache *\n")
	return b.String()
}

// buildAPIGrantUncached is the shared shape of the uncached-grant
// scenarios: per-op policy retrieval + decision over the signature
// sweep, with the compiled engine on or off.
func buildAPIGrantUncached(compiled bool) func(Options) (func() func() error, func(), error) {
	return func(opts Options) (func() func() error, func(), error) {
		api := gaa.New(gaa.WithCompiledEngine(compiled))
		conditions.Register(api, conditions.Deps{
			Threat: ids.NewManager(ids.Low),
			Groups: groups.NewStore(),
		})
		src := gaa.NewMemorySource()
		if err := src.AddPolicy("*", signatureSweepPolicy(128)); err != nil {
			return nil, nil, err
		}
		local := []gaa.PolicySource{src}
		req := gaa.NewRequest("apache", "GET /index.html",
			gaa.Param{Type: gaa.ParamRequestURI, Authority: gaa.AuthorityAny, Value: "GET /index.html"},
			gaa.Param{Type: gaa.ParamInputLength, Authority: gaa.AuthorityAny, Value: "14"})
		return func() func() error {
			ans := new(gaa.Answer)
			ctx := context.Background()
			return func() error {
				policy, err := api.GetObjectPolicyInfo("/index.html", nil, local)
				if err != nil {
					return err
				}
				if err := api.CheckAuthorizationInto(ctx, policy, req, ans); err != nil {
					return err
				}
				if ans.Decision != gaa.Yes {
					return fmt.Errorf("decision = %v, want yes", ans.Decision)
				}
				return nil
			}
		}, func() {}, nil
	}
}

// nullResponse is a reusable ResponseWriter that discards bodies; the
// parallel suite uses it instead of httptest.NewRecorder so harness
// allocations stay out of the per-op figures.
type nullResponse struct {
	header http.Header
	code   int
	bytes  int
}

func newNullResponse() *nullResponse {
	return &nullResponse{header: make(http.Header, 4)}
}

func (w *nullResponse) Header() http.Header { return w.header }

func (w *nullResponse) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
}

func (w *nullResponse) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	w.bytes += len(p)
	return len(p), nil
}

func (w *nullResponse) reset() {
	w.code = 0
	w.bytes = 0
	clear(w.header)
}

// ParallelResults runs every scenario at every concurrency level.
func ParallelResults(opts Options) ([]ParallelResult, error) {
	return ParallelResultsScaled(opts, 1)
}

// ParallelResultsScaled is ParallelResults with every scenario's op
// count multiplied by scale (minimum 1 op). The regression guard
// (TestBenchGuard) runs the suite at a small scale so it fits a test
// budget while measuring the same code paths.
func ParallelResultsScaled(opts Options, scale float64) ([]ParallelResult, error) {
	opts = opts.Defaults()
	var out []ParallelResult
	for _, sc := range parallelScenarios() {
		newOp, cleanup, err := sc.build(opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		ops := int(float64(sc.ops) * scale)
		if ops < 1 {
			ops = 1
		}
		for _, g := range ParallelGoroutines {
			res, err := measureParallel(sc.name, g, ops, newOp)
			if err != nil {
				cleanup()
				return nil, err
			}
			out = append(out, res)
		}
		cleanup()
	}
	return out, nil
}

// Parallel prints the parallel throughput table (cmd/gaa-bench
// -parallel).
func Parallel(w io.Writer, opts Options) error {
	results, err := ParallelResults(opts)
	if err != nil {
		return err
	}
	tbl := bench.Table{
		Title:  "Parallel decision-path throughput (read-mostly cache, pooled eval state)",
		Header: []string{"scenario", "goroutines", "ns/op", "req/s", "B/op", "allocs/op"},
		Notes: []string{
			fmt.Sprintf("GOMAXPROCS=%d; fixed op counts per scenario; tracing disabled", runtime.GOMAXPROCS(0)),
		},
	}
	for _, r := range results {
		tbl.AddRow(r.Scenario, fmt.Sprintf("%d", r.Goroutines),
			fmt.Sprintf("%.0f", r.NsPerOp), fmt.Sprintf("%.0f", r.ReqPerSec),
			fmt.Sprintf("%.1f", r.BytesPerOp), fmt.Sprintf("%.2f", r.AllocsPerOp))
	}
	tbl.Fprint(w)
	return nil
}

// WriteParallelJSON emits the results as indented JSON
// (BENCH_parallel.json).
func WriteParallelJSON(w io.Writer, results []ParallelResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
