package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"gaaapi/internal/bench"
	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
)

// E6 checks the paper's section 2.1 composition semantics as a full
// decision matrix — for every (system policy, local policy) pair in
// {grant, deny, inapplicable} and every composition mode in {expand,
// narrow, stop} — and measures the relative cost of composed
// evaluation.
func E6(w io.Writer, opts Options) error {
	opts = opts.Defaults()
	api := gaa.New()
	req := gaa.NewRequest("apache", "GET /x")

	mk := func(kind string, mode string) *eacl.EACL {
		var src string
		switch kind {
		case "grant":
			src = "pos_access_right apache *\n"
		case "deny":
			src = "neg_access_right apache *\n"
		case "n/a":
			src = "pos_access_right sshd login\n" // never matches the request
		}
		if mode != "" {
			src = "eacl_mode " + mode + "\n" + src
		}
		e, err := eacl.ParseString(src)
		if err != nil {
			panic(err)
		}
		return e
	}

	// Expected decisions per DESIGN.md: stop ignores local when a
	// system policy exists; narrow conjoins (deny wins, system
	// inapplicability defers to local); expand disjoins (grant wins).
	expected := map[string]map[[2]string]string{
		"expand": {
			{"grant", "grant"}: "yes", {"grant", "deny"}: "yes", {"grant", "n/a"}: "yes",
			{"deny", "grant"}: "yes", {"deny", "deny"}: "no", {"deny", "n/a"}: "no",
			{"n/a", "grant"}: "yes", {"n/a", "deny"}: "no", {"n/a", "n/a"}: "maybe",
		},
		"narrow": {
			{"grant", "grant"}: "yes", {"grant", "deny"}: "no", {"grant", "n/a"}: "yes",
			{"deny", "grant"}: "no", {"deny", "deny"}: "no", {"deny", "n/a"}: "no",
			{"n/a", "grant"}: "yes", {"n/a", "deny"}: "no", {"n/a", "n/a"}: "maybe",
		},
		"stop": {
			{"grant", "grant"}: "yes", {"grant", "deny"}: "yes", {"grant", "n/a"}: "yes",
			{"deny", "grant"}: "no", {"deny", "deny"}: "no", {"deny", "n/a"}: "no",
			{"n/a", "grant"}: "maybe", {"n/a", "deny"}: "maybe", {"n/a", "n/a"}: "maybe",
		},
	}

	tbl := bench.Table{
		Title:  "E6: composition mode semantics (paper section 2.1)",
		Header: []string{"mode", "system", "local", "decision", "expected"},
		Notes: []string{
			"n/a = no applicable entry; maybe = uncertain -> HTTP_DECLINED (native access control decides)",
		},
	}
	mismatches := 0
	kinds := []string{"grant", "deny", "n/a"}
	for _, mode := range []string{"expand", "narrow", "stop"} {
		for _, sys := range kinds {
			for _, loc := range kinds {
				p := gaa.NewPolicy("/x",
					[]*eacl.EACL{mk(sys, mode)},
					[]*eacl.EACL{mk(loc, "")})
				ans, err := api.CheckAuthorization(context.Background(), p, req)
				if err != nil {
					return err
				}
				want := expected[mode][[2]string{sys, loc}]
				status := want
				if ans.Decision.String() != want {
					status = fmt.Sprintf("%s (MISMATCH)", want)
					mismatches++
				}
				tbl.AddRow(mode, sys, loc, ans.Decision.String(), status)
			}
		}
	}
	tbl.Fprint(w)

	// Relative cost of the modes over a two-level policy.
	costTbl := bench.Table{
		Title:  "E6b: composed-evaluation cost by mode",
		Header: []string{"mode", "per call (µs)"},
		Notes:  []string{fmt.Sprintf("%d trials of 1000-call batches", opts.Trials)},
	}
	for _, mode := range []string{"expand", "narrow", "stop"} {
		p := gaa.NewPolicy("/x",
			[]*eacl.EACL{mk("grant", mode)},
			[]*eacl.EACL{mk("grant", "")})
		s := bench.Measure(opts.Trials, func() {
			for i := 0; i < 1000; i++ {
				if _, err := api.CheckAuthorization(context.Background(), p, req); err != nil {
					panic(err)
				}
			}
		})
		costTbl.AddRow(mode, fmt.Sprintf("%.2f", float64(s.Mean)/1000/float64(time.Microsecond)))
	}
	costTbl.Fprint(w)

	if mismatches > 0 {
		return fmt.Errorf("E6: %d composition mismatches", mismatches)
	}
	return nil
}
