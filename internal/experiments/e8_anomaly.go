package experiments

import (
	"fmt"
	"io"
	"strings"

	"gaaapi/internal/bench"
	"gaaapi/internal/ids"
	"gaaapi/internal/workload"
)

// E8 evaluates the anomaly detector (the paper's section 9 future
// work: "a simple profile building module and anomaly detector ... to
// support anomaly-based intrusion detection in addition to the
// signature-based"): profiles are trained per client on the
// legitimate mix, then scored against a legitimate holdout (false
// positives) and the attack classes replayed from trained clients
// (detections without any signature knowledge).
func E8(w io.Writer, opts Options) error {
	opts = opts.Defaults()
	det := ids.NewDetector(ids.DefaultAnomalyConfig())

	// Train: a focused client population so every profile crosses the
	// MinTraining threshold.
	clients := []string{"10.0.0.11", "10.0.0.12", "10.0.0.13", "10.0.0.14", "10.0.0.15"}
	var train []workload.Request
	for i, ip := range clients {
		train = append(train, workload.LegitFrom(ip, 400, opts.Seed+int64(i))...)
	}
	for _, r := range train {
		path, input := splitTarget(r.Target)
		det.Train(r.ClientIP, path, input)
	}

	// Holdout: same distribution, different seeds.
	var scored, falsePos int
	for i, ip := range clients {
		for _, r := range workload.LegitFrom(ip, 100, opts.Seed+100+int64(i)) {
			scored++
			path, input := splitTarget(r.Target)
			if det.Unusual(r.ClientIP, path, input) {
				falsePos++
			}
		}
	}

	// Attacks replayed from a trained client (an insider or a
	// compromised workstation): no signature is consulted.
	trainedClient := clients[0]
	if det.Trained(trainedClient) < 20 {
		return fmt.Errorf("E8: client %s under-trained", trainedClient)
	}

	tbl := bench.Table{
		Title:  "E8: anomaly-based detection (paper section 9 future work)",
		Header: []string{"attack class", "anomaly score", "flagged"},
	}
	attacks := []workload.Request{
		workload.PhfScan(trainedClient),
		workload.TestCGIScan(trainedClient),
		workload.SlashFlood(trainedClient),
		workload.Nimda(trainedClient),
		workload.Overflow(trainedClient, 1200),
	}
	detected := 0
	for _, atk := range attacks {
		path, input := splitTarget(atk.Target)
		score := det.Score(trainedClient, path, input)
		flagged := det.Unusual(trainedClient, path, input)
		if flagged {
			detected++
		}
		tbl.AddRow(atk.Attack, fmt.Sprintf("%.2f", score), yesNo(flagged))
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("training: %d requests over %d clients; holdout: %d scored, false positives %d (%s)",
			len(train), len(clients), scored, falsePos, pct(100*float64(falsePos)/float64(max(scored, 1)))),
		fmt.Sprintf("anomaly threshold %.1f; detected %d/%d attack classes without signatures",
			det.Threshold(), detected, len(attacks)),
		"anomaly detection complements signatures: length-anomalous classes (overflow, phf) are",
		"caught without signature knowledge; low-volume probes still need the signature engine (E3)",
	)
	tbl.Fprint(w)

	// The headline claim: the input-length anomalies are caught with
	// zero signature knowledge and the holdout false-positive rate
	// stays below 5%.
	if detected < 2 {
		return fmt.Errorf("E8: only %d/%d attack classes flagged", detected, len(attacks))
	}
	if falsePos*20 > scored {
		return fmt.Errorf("E8: false positive rate %d/%d exceeds 5%%", falsePos, scored)
	}
	return nil
}

// splitTarget separates a request target into path and the input
// length the detector profiles (query length, matching the guard's
// InputLength extraction for GET requests).
func splitTarget(target string) (string, int) {
	path, query, _ := strings.Cut(target, "?")
	return path, len(query)
}
