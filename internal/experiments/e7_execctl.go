package experiments

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"gaaapi/internal/bench"
	"gaaapi/internal/gaahttp"
	"gaaapi/internal/workload"
)

// E7 exercises the execution-control phase (the paper's section 6 step
// 3, its unfinished future work): a runaway CGI script under a CPU
// quota must be killed promptly, an output hog under an output quota
// likewise, and the monitoring overhead on well-behaved scripts must
// stay small.
func E7(w io.Writer, opts Options) error {
	opts = opts.Defaults()

	newStack := func(policy string) (*gaahttp.Stack, error) {
		return gaahttp.NewStack(gaahttp.StackConfig{
			LocalPolicies: map[string]string{"*": policy},
			DocRoot:       workload.DocRoot(),
		})
	}

	const quotaPolicy = `
pos_access_right apache *
mid_cond_quota local cpu_ms<=50
mid_cond_quota local output_bytes<=65536
`
	const plainPolicy = "pos_access_right apache *\n"

	guarded, err := newStack(quotaPolicy)
	if err != nil {
		return err
	}
	defer guarded.Close()
	plain, err := newStack(plainPolicy)
	if err != nil {
		return err
	}
	defer plain.Close()

	serve := func(st *gaahttp.Stack, target string) (int, time.Duration) {
		req := httptest.NewRequest("GET", target, nil)
		req.RemoteAddr = "10.0.0.1:40000"
		rec := httptest.NewRecorder()
		start := time.Now()
		st.Server.ServeHTTP(rec, req)
		return rec.Code, time.Since(start)
	}

	tbl := bench.Table{
		Title:  "E7: execution control (mid-condition quotas)",
		Header: []string{"scenario", "HTTP status", "outcome", "wall time"},
		Notes: []string{
			"quota policy: cpu_ms<=50, output_bytes<=65536",
			"spin = runaway CPU consumer; bigout = 1 MiB writer; search = well-behaved",
		},
	}

	failures := 0
	// Runaway CPU: must be aborted (500), and promptly.
	code, killLatency := serve(guarded, "/cgi-bin/spin")
	outcome := "aborted"
	if code != http.StatusInternalServerError {
		outcome = "NOT ABORTED"
		failures++
	}
	tbl.AddRow("spin under quota", fmt.Sprintf("%d", code), outcome, killLatency.Round(time.Millisecond).String())

	// Output hog: aborted by the output quota.
	code, d := serve(guarded, "/cgi-bin/bigout")
	outcome = "aborted"
	if code != http.StatusInternalServerError {
		outcome = "NOT ABORTED"
		failures++
	}
	tbl.AddRow("bigout under quota", fmt.Sprintf("%d", code), outcome, d.Round(time.Millisecond).String())

	// Well-behaved script under quota: unaffected.
	code, d = serve(guarded, "/cgi-bin/search?q=ok")
	outcome = "completed"
	if code != http.StatusOK {
		outcome = "FAILED"
		failures++
	}
	tbl.AddRow("search under quota", fmt.Sprintf("%d", code), outcome, d.Round(time.Microsecond).String())
	tbl.Fprint(w)

	// Monitoring overhead on well-behaved requests.
	const perBatch = 50
	measure := func(st *gaahttp.Stack) bench.Stats {
		return bench.Measure(opts.Trials, func() {
			for i := 0; i < perBatch; i++ {
				if code, _ := serve(st, "/cgi-bin/search?q=ok"); code != http.StatusOK {
					panic(fmt.Sprintf("unexpected status %d", code))
				}
			}
		})
	}
	withQuota := measure(guarded)
	without := measure(plain)
	ovTbl := bench.Table{
		Title:  "E7b: monitoring overhead on well-behaved scripts",
		Header: []string{"configuration", "per request (µs)"},
		Notes: []string{fmt.Sprintf("%d trials of %d-request batches; overhead %s",
			opts.Trials, perBatch, pct(bench.Overhead(without.Mean, withQuota.Mean)))},
	}
	perReq := func(s bench.Stats) string {
		return fmt.Sprintf("%.1f", float64(s.Mean)/perBatch/float64(time.Microsecond))
	}
	ovTbl.AddRow("no mid-conditions", perReq(without))
	ovTbl.AddRow("cpu+output quotas", perReq(withQuota))
	ovTbl.Fprint(w)

	if failures > 0 {
		return fmt.Errorf("E7: %d scenario failures", failures)
	}
	return nil
}
