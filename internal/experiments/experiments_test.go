package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// fmtSscan wraps fmt.Sscan for float parsing with error reporting.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

// fastOpts keeps experiment runtime small under `go test`.
func fastOpts() Options {
	return Options{Trials: 2, NotifyLatency: 2 * time.Millisecond, Seed: 2003}
}

func TestAllExperimentsRun(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			var out strings.Builder
			if err := r.Run(&out, fastOpts()); err != nil {
				t.Fatalf("%s failed: %v\noutput:\n%s", r.ID, err, out.String())
			}
			if out.Len() == 0 {
				t.Errorf("%s produced no output", r.ID)
			}
		})
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("e1"); !ok {
		t.Error("Find(e1) failed")
	}
	if _, ok := Find("e99"); ok {
		t.Error("Find(e99) should fail")
	}
}

func TestE1OutputShape(t *testing.T) {
	var out strings.Builder
	if err := E1(&out, fastOpts()); err != nil {
		t.Fatalf("E1: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"GAA-API functions", "whole request", "GAA share",
		"5.9 / 53.3", "19.4 / 66.8", "30% / 80%",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("E1 output missing %q:\n%s", want, s)
		}
	}
}

// TestE1NotificationDominates asserts the reproduced shape: with
// notification enabled, the per-request cost rises by roughly the
// notification latency, raising the GAA share of the request.
func TestE1NotificationDominates(t *testing.T) {
	var out strings.Builder
	opts := Options{Trials: 3, NotifyLatency: 20 * time.Millisecond, Seed: 1}
	if err := E1(&out, opts); err != nil {
		t.Fatalf("E1: %v", err)
	}
	// The "with notification" GAA time must exceed the latency floor.
	// (Parsing the rendered row keeps the assertion on the same data
	// the table reports.)
	var gaaRow string
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.Contains(line, "GAA-API functions") {
			gaaRow = line
		}
	}
	if gaaRow == "" {
		t.Fatalf("no GAA row in output:\n%s", out.String())
	}
	fields := strings.Fields(gaaRow)
	// layout: GAA-API functions (ms) <without> <with> ...
	var nums []float64
	for _, f := range fields {
		var v float64
		if _, err := fmtSscan(f, &v); err == nil {
			nums = append(nums, v)
		}
	}
	if len(nums) < 2 {
		t.Fatalf("cannot parse numbers from row %q", gaaRow)
	}
	without, with := nums[0], nums[1]
	if with < 20 {
		t.Errorf("with-notification GAA time %.2fms, want >= 20ms latency floor", with)
	}
	if with <= without {
		t.Errorf("notification did not increase GAA time: %.2f vs %.2f", with, without)
	}
}

func TestE3DetectsEverything(t *testing.T) {
	var out strings.Builder
	if err := E3(&out, fastOpts()); err != nil {
		t.Fatalf("E3: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), " no") && strings.Contains(out.String(), "blocked") {
		// Rows render yes/no per column; a "no" in the table body means
		// a miss, which E3 itself reports as an error — double-check.
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.Contains(line, "phf") && strings.Contains(line, "no") {
				t.Errorf("phf row contains a miss: %q", line)
			}
		}
	}
}
