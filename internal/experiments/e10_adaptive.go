package experiments

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"

	"gaaapi/internal/bench"
	"gaaapi/internal/gaahttp"
	"gaaapi/internal/ids"
	"gaaapi/internal/workload"
)

// E10 measures the paper's adaptive constraint specification (section
// 2: condition values "can be obtained at run time ... supplied by
// other services, e.g., an IDS"; section 3: the IDS communicates
// "values for thresholds"): the CGI input bound lives in the runtime
// value store and a value tuner tightens it as the threat level rises.
// The table shows the same request sizes flipping from served to
// denied per level, plus the evaluation cost of value indirection.
func E10(w io.Writer, opts Options) error {
	opts = opts.Defaults()
	const local = `
neg_access_right apache *
pre_cond_expr local input_length>@max_input
pos_access_right apache *
`
	st, err := gaahttp.NewStack(gaahttp.StackConfig{
		LocalPolicies: map[string]string{"*": local},
		DocRoot:       workload.DocRoot(),
		RuntimeValues: map[string]string{"max_input": "1000"},
	})
	if err != nil {
		return err
	}
	defer st.Close()

	tuner := ids.NewValueTuner(st.Values)
	tuner.SetLevelValues(ids.Low, map[string]string{"max_input": "1000"})
	tuner.SetLevelValues(ids.Medium, map[string]string{"max_input": "300"})
	tuner.SetLevelValues(ids.High, map[string]string{"max_input": "50"})

	serve := func(n int) int {
		req := httptest.NewRequest("GET", "/cgi-bin/search?q="+strings.Repeat("z", n), nil)
		req.RemoteAddr = "10.0.0.5:1"
		rec := httptest.NewRecorder()
		st.Server.ServeHTTP(rec, req)
		return rec.Code
	}

	sizes := []int{40, 200, 500, 1500}
	expected := map[ids.Level][]int{
		ids.Low:    {200, 200, 200, 403},
		ids.Medium: {200, 200, 403, 403},
		ids.High:   {200, 403, 403, 403},
	}

	tbl := bench.Table{
		Title:  "E10: adaptive constraints — input bound tightening with threat level",
		Header: []string{"threat level", "bound (@max_input)", "40 B", "200 B", "500 B", "1500 B", "expected"},
		Notes: []string{
			"the policy text never changes; only the runtime value store does (paper section 2)",
		},
	}
	mismatches := 0
	for _, level := range []ids.Level{ids.Low, ids.Medium, ids.High} {
		st.Threat.Set(level)
		tuner.Apply(level)
		bound, _ := st.Values.LookupValue("max_input")
		row := []string{level.String(), bound}
		ok := true
		for i, n := range sizes {
			code := serve(n)
			row = append(row, fmt.Sprintf("%d", code))
			if code != expected[level][i] {
				ok = false
			}
		}
		status := "ok"
		if !ok {
			status = "MISMATCH"
			mismatches++
		}
		row = append(row, status)
		tbl.AddRow(row...)
	}
	tbl.Fprint(w)

	// Cost of value indirection: identical policy with a literal bound.
	literal, err := gaahttp.NewStack(gaahttp.StackConfig{
		LocalPolicies: map[string]string{"*": strings.Replace(local, "@max_input", "1000", 1)},
		DocRoot:       workload.DocRoot(),
	})
	if err != nil {
		return err
	}
	defer literal.Close()
	st.Threat.Set(ids.Low)
	tuner.Apply(ids.Low)

	const perBatch = 200
	measure := func(s *gaahttp.Stack) bench.Stats {
		return bench.Measure(opts.Trials, func() {
			for i := 0; i < perBatch; i++ {
				req := httptest.NewRequest("GET", "/cgi-bin/search?q=ok", nil)
				req.RemoteAddr = "10.0.0.5:1"
				rec := httptest.NewRecorder()
				s.Server.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					panic(fmt.Sprintf("unexpected status %d", rec.Code))
				}
			}
		})
	}
	withRef := measure(st)
	withLit := measure(literal)
	cost := bench.Table{
		Title:  "E10b: cost of runtime value indirection",
		Header: []string{"condition value", "per request (µs)"},
		Notes: []string{fmt.Sprintf("%d trials of %d-request batches; overhead %s",
			opts.Trials, perBatch, pct(bench.Overhead(withLit.Mean, withRef.Mean)))},
	}
	perReq := func(s bench.Stats) string {
		return fmt.Sprintf("%.1f", float64(s.Mean)/perBatch/1000)
	}
	cost.AddRow("literal (input_length>1000)", perReq(withLit))
	cost.AddRow("runtime (input_length>@max_input)", perReq(withRef))
	cost.Fprint(w)

	if mismatches > 0 {
		return fmt.Errorf("E10: %d behaviour mismatches", mismatches)
	}
	return nil
}
