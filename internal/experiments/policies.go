package experiments

// The paper's section 7 policies, shared by the experiments.
const (
	// Policy71System is the section 7.1 system-wide policy: "No access
	// is allowed when system threat level is high", mandatory (narrow).
	Policy71System = `
eacl_mode narrow
# EACL entry 1
neg_access_right * *
pre_cond_system_threat_level local =high
`

	// Policy71Local is the section 7.1 local policy: "all Apache
	// accesses have to be authenticated if the system threat level is
	// higher than low".
	Policy71Local = `
# EACL entry 1
pos_access_right apache *
pre_cond_system_threat_level local >low
pre_cond_accessid_USER apache *
`

	// Policy72System is the section 7.2 system-wide policy: members of
	// the group BadGuys are denied access, mandatorily.
	Policy72System = `
eacl_mode narrow
# EACL entry 1
neg_access_right * *
pre_cond_accessid_GROUP local BadGuys
`

	// Policy72Local is the section 7.2 local policy extended with the
	// paper's additional signatures (slash-flood DoS, NIMDA malformed
	// URLs, CGI input longer than 1000 characters).
	Policy72Local = `
# EACL entry 1: known CGI exploit and DoS signatures
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi* *///////////////////* *%c0%af* *%255c* *cmd.exe* *root.exe*
rr_cond_notify local on:failure/sysadmin/info:cgiexploit
rr_cond_update_log local on:failure/BadGuys/info:IP
# EACL entry 2: buffer-overflow detector (Code Red style)
neg_access_right apache *
pre_cond_expr local input_length>1000
rr_cond_notify local on:failure/sysadmin/info:overflow
rr_cond_update_log local on:failure/BadGuys/info:IP
# EACL entry 3: everything else is allowed
pos_access_right apache *
`

	// Policy72LocalNoNotify is Policy72Local with the notification
	// conditions removed — the paper's "without notification"
	// configuration.
	Policy72LocalNoNotify = `
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi* *///////////////////* *%c0%af* *%255c* *cmd.exe* *root.exe*
rr_cond_update_log local on:failure/BadGuys/info:IP
neg_access_right apache *
pre_cond_expr local input_length>1000
rr_cond_update_log local on:failure/BadGuys/info:IP
pos_access_right apache *
`
)
