// Package retry provides bounded retry with exponential backoff and a
// small circuit breaker for side-effecting integrations (notification
// delivery, audit sinks, blacklist updates): a transient failure is
// retried off the policy semantics, and a dead dependency trips the
// breaker so the request hot path stops paying for it and the decision
// degrades per policy instead of stalling.
package retry

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Policy bounds a retried operation.
type Policy struct {
	// MaxAttempts is the total number of attempts (first try included);
	// values below 1 mean a single attempt.
	MaxAttempts int
	// BaseDelay is the sleep before the first retry (default 1ms).
	BaseDelay time.Duration
	// Multiplier grows the delay after every retry (default 2).
	Multiplier float64
	// MaxDelay caps the backoff (default 1s).
	MaxDelay time.Duration
	// Jitter is the fraction of each delay that is randomized away,
	// in [0,1]: 0 keeps the deterministic exponential schedule, 1 is
	// full jitter — uniform over (0, delay]. A fleet of peers retrying
	// a recovered node on the same deterministic schedule is a
	// thundering herd; jitter decorrelates them.
	Jitter float64
	// Rand supplies uniform [0,1) randomness for jitter; nil uses the
	// process-wide source. Inject a seeded source for deterministic
	// tests.
	Rand func() float64
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	return p
}

// Delay returns the backoff before retry number attempt (attempt 1 is
// the sleep after the first failure): the capped exponential schedule
// with the policy's jitter fraction randomized. It is what Do sleeps
// between attempts, exported so callers running their own retry loops
// (the cluster replication pusher) share the same jittered schedule.
func (p Policy) Delay(attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		// Keep (1-Jitter) of the delay deterministic and spread the
		// rest uniformly; Jitter=1 is classic full jitter over (0, d].
		d = d*(1-p.Jitter) + d*p.Jitter*p.Rand()
		if d < 1 {
			d = 1 // never a zero sleep: that busy-spins the retry loop
		}
	}
	return time.Duration(d)
}

// Do runs fn until it succeeds, the attempts are exhausted, or ctx is
// cancelled; the backoff sleep is interruptible by ctx. It returns the
// number of attempts made and the last error (nil on success).
func Do(ctx context.Context, p Policy, fn func(context.Context) error) (int, error) {
	p = p.withDefaults()
	var err error
	for attempt := 1; ; attempt++ {
		if err = fn(ctx); err == nil {
			return attempt, nil
		}
		if attempt >= p.MaxAttempts {
			return attempt, err
		}
		t := time.NewTimer(p.Delay(attempt))
		select {
		case <-ctx.Done():
			t.Stop()
			return attempt, err
		case <-t.C:
		}
	}
}

// State is the circuit-breaker state.
type State int

const (
	// Closed: calls flow normally; consecutive failures are counted.
	Closed State = iota
	// Open: calls are rejected without reaching the dependency.
	Open
	// HalfOpen: the cooldown elapsed; a single probe call is let
	// through to test whether the dependency recovered.
	HalfOpen
)

// String returns "closed", "open" or "half-open".
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a consecutive-failure circuit breaker. It is safe for
// concurrent use. The zero value is not usable; construct with
// NewBreaker.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	clock     func() time.Time

	mu       sync.Mutex
	state    State
	fails    int
	openedAt time.Time
	probing  bool
	opens    uint64
}

// NewBreaker returns a breaker that opens after threshold consecutive
// failures (minimum 1) and half-opens after cooldown. A nil clock
// means time.Now.
func NewBreaker(threshold int, cooldown time.Duration, clock func() time.Time) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	if clock == nil {
		clock = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, clock: clock}
}

// refresh transitions Open -> HalfOpen once the cooldown elapsed.
// Callers hold b.mu.
func (b *Breaker) refresh() {
	if b.state == Open && b.clock().Sub(b.openedAt) >= b.cooldown {
		b.state = HalfOpen
		b.probing = false
	}
}

// Allow reports whether a call may proceed. In half-open state exactly
// one probe is admitted until its Record arrives.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refresh()
	switch b.state {
	case Closed:
		return true
	case HalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return false
	}
}

// Record reports the result of an admitted call: success closes the
// breaker, failure opens (or re-opens) it.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refresh()
	if err == nil {
		b.state = Closed
		b.fails = 0
		b.probing = false
		return
	}
	switch b.state {
	case HalfOpen:
		b.trip()
	case Closed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	}
}

// trip moves to Open. Callers hold b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.fails = 0
	b.probing = false
	b.openedAt = b.clock()
	b.opens++
}

// State returns the current state (Open lazily refreshed to HalfOpen).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refresh()
	return b.state
}

// Opens counts how many times the breaker tripped open.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
