package retry

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

var errFlaky = errors.New("flaky")

func TestDoSucceedsFirstAttempt(t *testing.T) {
	calls := 0
	attempts, err := Do(context.Background(), Policy{MaxAttempts: 5}, func(context.Context) error {
		calls++
		return nil
	})
	if err != nil || attempts != 1 || calls != 1 {
		t.Fatalf("attempts=%d calls=%d err=%v, want single clean attempt", attempts, calls, err)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	p := Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}
	attempts, err := Do(context.Background(), p, func(context.Context) error {
		calls++
		if calls < 3 {
			return errFlaky
		}
		return nil
	})
	if err != nil || attempts != 3 || calls != 3 {
		t.Fatalf("attempts=%d calls=%d err=%v, want success on third", attempts, calls, err)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	p := Policy{MaxAttempts: 4, BaseDelay: time.Microsecond}
	attempts, err := Do(context.Background(), p, func(context.Context) error {
		calls++
		return errFlaky
	})
	if !errors.Is(err, errFlaky) || attempts != 4 || calls != 4 {
		t.Fatalf("attempts=%d calls=%d err=%v, want exhausted with last error", attempts, calls, err)
	}
}

func TestDoZeroPolicyIsSingleAttempt(t *testing.T) {
	calls := 0
	attempts, err := Do(context.Background(), Policy{}, func(context.Context) error {
		calls++
		return errFlaky
	})
	if attempts != 1 || calls != 1 || !errors.Is(err, errFlaky) {
		t.Fatalf("attempts=%d calls=%d err=%v, want exactly one attempt for the zero policy", attempts, calls, err)
	}
}

func TestDoContextCancelsBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 10, BaseDelay: time.Hour} // would block forever
	calls := 0
	done := make(chan struct{})
	var attempts int
	var err error
	go func() {
		attempts, err = Do(ctx, p, func(context.Context) error {
			calls++
			return errFlaky
		})
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Do did not return after context cancellation during backoff")
	}
	if attempts != 1 || calls != 1 || !errors.Is(err, errFlaky) {
		t.Fatalf("attempts=%d calls=%d err=%v, want cancelled after first attempt", attempts, calls, err)
	}
}

func TestDoBackoffGrowsAndCaps(t *testing.T) {
	// Observed indirectly: with a multiplier of 3 and a cap equal to the
	// base, every sleep is the base delay; total wall time stays bounded.
	p := Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, Multiplier: 3, MaxDelay: time.Millisecond}
	start := time.Now()
	attempts, _ := Do(context.Background(), p, func(context.Context) error { return errFlaky })
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4", attempts)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("capped backoff took %v; cap not applied", elapsed)
	}
}

func TestDelayDeterministicWithoutJitter(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, Multiplier: 2, MaxDelay: 80 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Out-of-range attempts clamp rather than misbehave.
	if got := p.Delay(0); got != 10*time.Millisecond {
		t.Fatalf("Delay(0) = %v, want base delay", got)
	}
}

func TestDelayFullJitterBounds(t *testing.T) {
	src := rand.New(rand.NewSource(2003))
	p := Policy{
		BaseDelay: 10 * time.Millisecond, Multiplier: 2,
		MaxDelay: 80 * time.Millisecond, Jitter: 1, Rand: src.Float64,
	}
	for attempt := 1; attempt <= 6; attempt++ {
		det := Policy{BaseDelay: p.BaseDelay, Multiplier: p.Multiplier, MaxDelay: p.MaxDelay}.Delay(attempt)
		saw := map[time.Duration]bool{}
		for i := 0; i < 200; i++ {
			d := p.Delay(attempt)
			if d <= 0 || d > det {
				t.Fatalf("jittered Delay(%d) = %v outside (0, %v]", attempt, d, det)
			}
			saw[d] = true
		}
		if len(saw) < 10 {
			t.Fatalf("full jitter for attempt %d produced only %d distinct delays", attempt, len(saw))
		}
	}
}

func TestDelayPartialJitterKeepsFloor(t *testing.T) {
	src := rand.New(rand.NewSource(7))
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: 100 * time.Millisecond,
		Jitter: 0.25, Rand: src.Float64}
	for i := 0; i < 100; i++ {
		d := p.Delay(1)
		if d < 75*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("25%% jitter gave %v, want within [75ms, 100ms]", d)
		}
	}
}

func TestDelaySeededSourceIsReproducible(t *testing.T) {
	mk := func() []time.Duration {
		src := rand.New(rand.NewSource(42))
		p := Policy{BaseDelay: time.Millisecond, Jitter: 1, Rand: src.Float64}
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = p.Delay(i + 1)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded jitter not reproducible: run1[%d]=%v run2[%d]=%v", i, a[i], i, b[i])
		}
	}
}

func TestDoAppliesJitterWithoutStalling(t *testing.T) {
	src := rand.New(rand.NewSource(1))
	p := Policy{MaxAttempts: 5, BaseDelay: 100 * time.Microsecond, Jitter: 1, Rand: src.Float64}
	start := time.Now()
	attempts, err := Do(context.Background(), p, func(context.Context) error { return errFlaky })
	if attempts != 5 || !errors.Is(err, errFlaky) {
		t.Fatalf("attempts=%d err=%v", attempts, err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("jittered Do took %v; jitter must shrink, never grow, delays", elapsed)
	}
}

// newTestBreaker returns a breaker on a manual clock.
func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *time.Time) {
	now := time.Unix(0, 0)
	b := NewBreaker(threshold, cooldown, func() time.Time { return now })
	return b, &now
}

func TestBreakerLifecycle(t *testing.T) {
	b, now := newTestBreaker(3, time.Minute)

	// Closed: failures below the threshold keep it closed.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.Record(errFlaky)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want closed below threshold", got)
	}

	// Third consecutive failure trips it open.
	b.Allow()
	b.Record(errFlaky)
	if got := b.State(); got != Open {
		t.Fatalf("state = %v, want open after threshold", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call")
	}
	if got := b.Opens(); got != 1 {
		t.Fatalf("opens = %d, want 1", got)
	}

	// Cooldown elapses: half-open, exactly one probe.
	*now = now.Add(time.Minute)
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state = %v, want half-open after cooldown", got)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Probe fails: straight back to open, counted.
	b.Record(errFlaky)
	if got := b.State(); got != Open {
		t.Fatalf("state = %v, want re-opened after failed probe", got)
	}
	if got := b.Opens(); got != 2 {
		t.Fatalf("opens = %d, want 2", got)
	}

	// Second cooldown, successful probe: closed again.
	*now = now.Add(time.Minute)
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the second probe")
	}
	b.Record(nil)
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want closed after successful probe", got)
	}
	if !b.Allow() {
		t.Fatal("re-closed breaker rejected a call")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	for i := 0; i < 10; i++ {
		b.Allow()
		b.Record(errFlaky)
		b.Allow()
		b.Record(nil) // streak broken every time
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want closed (failures never consecutive)", got)
	}
	if got := b.Opens(); got != 0 {
		t.Fatalf("opens = %d, want 0", got)
	}
}

func TestBreakerConcurrent(t *testing.T) {
	b := NewBreaker(3, time.Millisecond, nil)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if b.Allow() {
					if (w+i)%2 == 0 {
						b.Record(errFlaky)
					} else {
						b.Record(nil)
					}
				}
				_ = b.State()
				_ = b.Opens()
			}
		}(w)
	}
	wg.Wait()
	// No assertion on the final state (it depends on interleaving); the
	// run must simply be race-free and the state coherent.
	if s := b.State(); s != Closed && s != Open && s != HalfOpen {
		t.Fatalf("incoherent state %v", s)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Closed: "closed", Open: "open", HalfOpen: "half-open", State(9): "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}
