// Package gaaapi's root benchmark suite: one testing.B benchmark per
// experiment table (DESIGN.md section 4). The experiment binaries in
// cmd/gaa-bench print the paper-style tables; these benchmarks expose
// the same code paths to `go test -bench` for regression tracking.
package gaaapi

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gaaapi/internal/conditions"
	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/gaahttp"
	"gaaapi/internal/groups"
	"gaaapi/internal/httpd"
	"gaaapi/internal/ids"
	"gaaapi/internal/logscan"
	"gaaapi/internal/workload"
)

const (
	policy71System = `
eacl_mode narrow
neg_access_right * *
pre_cond_system_threat_level local =high
`
	policy71Local = `
pos_access_right apache *
pre_cond_system_threat_level local >low
pre_cond_accessid_USER apache *
`
	policy72System = `
eacl_mode narrow
neg_access_right * *
pre_cond_accessid_GROUP local BadGuys
`
	policy72Local = `
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi*
rr_cond_update_log local on:failure/BadGuys/info:IP
neg_access_right apache *
pre_cond_expr local input_length>1000
pos_access_right apache *
`
	policy72LocalNotify = `
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi*
rr_cond_notify local on:failure/sysadmin/info:cgiexploit
rr_cond_update_log local on:failure/BadGuys/info:IP
pos_access_right apache *
`
)

func mustStack(b *testing.B, cfg gaahttp.StackConfig) *gaahttp.Stack {
	b.Helper()
	st, err := gaahttp.NewStack(cfg)
	if err != nil {
		b.Fatalf("NewStack: %v", err)
	}
	b.Cleanup(st.Close)
	return st
}

// BenchmarkE1_PaperOverhead regenerates the paper's section 8 rows:
// the GAA-API hook alone and the whole request, with and without the
// notification action (synthetic 2 ms latency so the benchmark stays
// tractable; cmd/gaa-bench uses the calibrated 47 ms).
func BenchmarkE1_PaperOverhead(b *testing.B) {
	attack := workload.PhfScan("192.0.2.66")

	run := func(b *testing.B, local string, latency time.Duration, whole bool) {
		st := mustStack(b, gaahttp.StackConfig{
			SystemPolicy:  policy71System,
			LocalPolicies: map[string]string{"*": local},
			DocRoot:       workload.DocRoot(),
			NotifyLatency: latency,
		})
		rec := httpd.NewRequestRec(attack.HTTPRequest(), nil, time.Now())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Groups.Remove("BadGuys", attack.ClientIP)
			if whole {
				st.Server.ServeHTTP(httptest.NewRecorder(), attack.HTTPRequest())
			} else {
				st.Guard.Check(rec)
			}
		}
	}

	b.Run("gaa-only/no-notify", func(b *testing.B) { run(b, policy72Local, 0, false) })
	b.Run("gaa-only/notify", func(b *testing.B) { run(b, policy72LocalNotify, 2*time.Millisecond, false) })
	b.Run("whole-request/no-notify", func(b *testing.B) { run(b, policy72Local, 0, true) })
	b.Run("whole-request/notify", func(b *testing.B) { run(b, policy72LocalNotify, 2*time.Millisecond, true) })
}

// BenchmarkE2_Lockdown measures the lockdown policy at each threat
// level for an authenticated client (the 7.1 behaviour table's hot
// path).
func BenchmarkE2_Lockdown(b *testing.B) {
	for _, level := range []ids.Level{ids.Low, ids.Medium, ids.High} {
		b.Run(level.String(), func(b *testing.B) {
			st := mustStack(b, gaahttp.StackConfig{
				SystemPolicy:  policy71System,
				LocalPolicies: map[string]string{"*": policy71Local},
				DocRoot:       workload.DocRoot(),
				Users:         map[string]string{"alice": "pw"},
			})
			st.Threat.Set(level)
			req := httptest.NewRequest("GET", "/index.html", nil)
			req.RemoteAddr = "10.0.1.5:1"
			req.SetBasicAuth("alice", "pw")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Server.ServeHTTP(httptest.NewRecorder(), req)
			}
		})
	}
}

// BenchmarkE3_Detection measures the full detection pipeline per
// attack class (7.2 table): signature match, denial, blacklist update.
func BenchmarkE3_Detection(b *testing.B) {
	for _, atk := range workload.AttackMix() {
		b.Run(atk.Attack, func(b *testing.B) {
			st := mustStack(b, gaahttp.StackConfig{
				SystemPolicy:  policy72System,
				LocalPolicies: map[string]string{"*": policy72Local},
				DocRoot:       workload.DocRoot(),
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Groups.Remove("BadGuys", atk.ClientIP)
				st.Server.ServeHTTP(httptest.NewRecorder(), atk.HTTPRequest())
			}
		})
	}
}

// BenchmarkE4_PolicyCache measures the access-control hook with the
// composed-policy cache off and on (section 9 future work).
func BenchmarkE4_PolicyCache(b *testing.B) {
	for _, cache := range []bool{false, true} {
		name := "off"
		if cache {
			name = "on"
		}
		b.Run("cache-"+name, func(b *testing.B) {
			st := mustStack(b, gaahttp.StackConfig{
				SystemPolicy:  policy71System,
				LocalPolicies: map[string]string{"*": policy72Local},
				DocRoot:       workload.DocRoot(),
				PolicyCache:   cache,
			})
			req := workload.Legit(1, 1)[0]
			rec := httpd.NewRequestRec(req.HTTPRequest(), nil, time.Now())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Guard.Check(rec)
			}
		})
	}
}

// BenchmarkE5_Scaling measures CheckAuthorization against synthetic
// policies of growing size (worst case: only the last entry matches).
func BenchmarkE5_Scaling(b *testing.B) {
	api := gaa.New()
	conditions.Register(api, conditions.Deps{
		Threat: ids.NewManager(ids.Low),
		Groups: groups.NewStore(),
	})
	req := gaa.NewRequest("apache", "GET /index.html",
		gaa.Param{Type: gaa.ParamRequestURI, Authority: gaa.AuthorityAny, Value: "GET /index.html"})

	for _, entries := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("entries-%d", entries), func(b *testing.B) {
			var src strings.Builder
			for i := 0; i < entries; i++ {
				fmt.Fprintf(&src, "neg_access_right apache *\npre_cond_regex gnu *no-%d*\n", i)
			}
			src.WriteString("pos_access_right apache *\n")
			e, err := eacl.ParseString(src.String())
			if err != nil {
				b.Fatal(err)
			}
			p := gaa.NewPolicy("/x", nil, []*eacl.EACL{e})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := api.CheckAuthorization(context.Background(), p, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6_Composition measures two-level composed evaluation per
// mode (section 2.1).
func BenchmarkE6_Composition(b *testing.B) {
	api := gaa.New()
	req := gaa.NewRequest("apache", "GET /x")
	for _, mode := range []string{"expand", "narrow", "stop"} {
		b.Run(mode, func(b *testing.B) {
			sys, err := eacl.ParseString("eacl_mode " + mode + "\npos_access_right apache *\n")
			if err != nil {
				b.Fatal(err)
			}
			loc, err := eacl.ParseString("pos_access_right apache *\n")
			if err != nil {
				b.Fatal(err)
			}
			p := gaa.NewPolicy("/x", []*eacl.EACL{sys}, []*eacl.EACL{loc})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := api.CheckAuthorization(context.Background(), p, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7_MidConditions measures a well-behaved CGI request with
// and without execution-control quotas (the monitoring overhead of
// E7b).
func BenchmarkE7_MidConditions(b *testing.B) {
	policies := map[string]string{
		"no-quota": "pos_access_right apache *\n",
		"quota":    "pos_access_right apache *\nmid_cond_quota local cpu_ms<=1000\n",
	}
	for name, policy := range policies {
		b.Run(name, func(b *testing.B) {
			st := mustStack(b, gaahttp.StackConfig{
				LocalPolicies: map[string]string{"*": policy},
			})
			req := httptest.NewRequest("GET", "/cgi-bin/search?q=bench", nil)
			req.RemoteAddr = "10.0.0.1:1"
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Server.ServeHTTP(httptest.NewRecorder(), req)
			}
		})
	}
}

// BenchmarkE8_Anomaly measures profile scoring (the per-request cost
// of anomaly-based detection).
func BenchmarkE8_Anomaly(b *testing.B) {
	det := ids.NewDetector(ids.DefaultAnomalyConfig())
	for _, r := range workload.LegitFrom("10.0.0.1", 500, 1) {
		path, query, _ := strings.Cut(r.Target, "?")
		det.Train("10.0.0.1", path, len(query))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Score("10.0.0.1", "/cgi-bin/phf", 1200)
	}
}

// BenchmarkE9_OfflineScan measures the offline CLF scanner's
// throughput (the related-work comparator of E9).
func BenchmarkE9_OfflineScan(b *testing.B) {
	var log strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&log, "10.0.0.%d - - [19/May/2003:12:00:%02d +0000] %q 200 512\n",
			i%250+1, i%60, "GET /docs/guide.html")
	}
	log.WriteString(`10.0.0.66 - - [19/May/2003:12:01:00 +0000] "GET /cgi-bin/phf?Qalias=x" 200 88` + "\n")
	data := log.String()
	scanner := logscan.NewScanner(ids.NewDB(ids.DefaultSignatures()...))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		findings, _, _, err := scanner.Scan(strings.NewReader(data))
		if err != nil || len(findings) != 1 {
			b.Fatalf("scan = %v, %v", findings, err)
		}
	}
}

// BenchmarkE10_RuntimeValues measures the cost of '@name' value
// indirection in condition values against a literal bound.
func BenchmarkE10_RuntimeValues(b *testing.B) {
	run := func(b *testing.B, policy string, values map[string]string) {
		st := mustStack(b, gaahttp.StackConfig{
			LocalPolicies: map[string]string{"*": policy},
			DocRoot:       workload.DocRoot(),
			RuntimeValues: values,
		})
		req := httptest.NewRequest("GET", "/cgi-bin/search?q=ok", nil)
		req.RemoteAddr = "10.0.0.5:1"
		rec := httpd.NewRequestRec(req, nil, time.Now())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Guard.Check(rec)
		}
	}
	const refPolicy = "neg_access_right apache *\npre_cond_expr local input_length>@max_input\npos_access_right apache *\n"
	const litPolicy = "neg_access_right apache *\npre_cond_expr local input_length>1000\npos_access_right apache *\n"
	b.Run("literal", func(b *testing.B) { run(b, litPolicy, nil) })
	b.Run("runtime-value", func(b *testing.B) { run(b, refPolicy, map[string]string{"max_input": "1000"}) })
}

// runGuardParallel measures Guard.Check under RunParallel at the given
// parallelism (goroutines = parallelism × GOMAXPROCS).
func runGuardParallel(b *testing.B, st *gaahttp.Stack, rec *httpd.RequestRec, parallelism int) {
	b.SetParallelism(parallelism)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			st.Guard.Check(rec)
		}
	})
}

// BenchmarkE1_GuardParallel is the E1 gaa-only row under concurrent
// load: the access-control hook alone (no notification), legitimate
// request, shared API instance.
func BenchmarkE1_GuardParallel(b *testing.B) {
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines-%d", g), func(b *testing.B) {
			st := mustStack(b, gaahttp.StackConfig{
				SystemPolicy:  policy71System,
				LocalPolicies: map[string]string{"*": policy72Local},
				DocRoot:       workload.DocRoot(),
			})
			req := workload.Legit(1, 1)[0]
			rec := httpd.NewRequestRec(req.HTTPRequest(), nil, time.Now())
			runGuardParallel(b, st, rec, g)
		})
	}
}

// BenchmarkE4_PolicyCacheParallel is the E4 cache-on row under
// concurrent load: the read-mostly cache keeps the hit path lock-free,
// so ops/sec must not collapse as goroutines pile up.
func BenchmarkE4_PolicyCacheParallel(b *testing.B) {
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines-%d", g), func(b *testing.B) {
			st := mustStack(b, gaahttp.StackConfig{
				SystemPolicy:  policy71System,
				LocalPolicies: map[string]string{"*": policy72Local},
				DocRoot:       workload.DocRoot(),
				PolicyCache:   true,
			})
			req := workload.Legit(1, 1)[0]
			rec := httpd.NewRequestRec(req.HTTPRequest(), nil, time.Now())
			runGuardParallel(b, st, rec, g)
		})
	}
}

// BenchmarkE11_ServerParallel is the E11 whole-request shape under
// RunParallel: full HTTP handling through the guarded server.
func BenchmarkE11_ServerParallel(b *testing.B) {
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines-%d", g), func(b *testing.B) {
			st := mustStack(b, gaahttp.StackConfig{
				SystemPolicy:  policy71System,
				LocalPolicies: map[string]string{"*": policy72Local},
				DocRoot:       workload.DocRoot(),
				PolicyCache:   true,
			})
			req := workload.Legit(1, 1)[0]
			b.SetParallelism(g)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					st.Server.ServeHTTP(httptest.NewRecorder(), req.HTTPRequest())
				}
			})
		})
	}
}

// BenchmarkCheckAuthorizationInto asserts the zero-allocation claim:
// with tracing disabled and the policy cached, a grant through the
// caller-supplied-Answer entry point must not allocate.
func BenchmarkCheckAuthorizationInto(b *testing.B) {
	api := gaa.New(gaa.WithPolicyCache(64))
	conditions.Register(api, conditions.Deps{
		Threat: ids.NewManager(ids.Low),
		Groups: groups.NewStore(),
	})
	src := gaa.NewMemorySource()
	if err := src.AddPolicy("*", policy72Local); err != nil {
		b.Fatal(err)
	}
	policy, err := api.GetObjectPolicyInfo("/index.html", nil, []gaa.PolicySource{src})
	if err != nil {
		b.Fatal(err)
	}
	req := gaa.NewRequest("apache", "GET /index.html",
		gaa.Param{Type: gaa.ParamRequestURI, Authority: gaa.AuthorityAny, Value: "GET /index.html"},
		gaa.Param{Type: gaa.ParamInputLength, Authority: gaa.AuthorityAny, Value: "14"})
	ctx := context.Background()

	b.Run("serial", func(b *testing.B) {
		ans := new(gaa.Answer)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := api.CheckAuthorizationInto(ctx, policy, req, ans); err != nil {
				b.Fatal(err)
			}
		}
		if ans.Decision != gaa.Yes {
			b.Fatalf("decision = %v, want yes", ans.Decision)
		}
	})
	b.Run("parallel-16", func(b *testing.B) {
		b.SetParallelism(16)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			ans := new(gaa.Answer)
			for pb.Next() {
				if err := api.CheckAuthorizationInto(ctx, policy, req, ans); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkEACLParse measures policy parsing (the cost the E4 cache
// avoids).
func BenchmarkEACLParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eacl.ParseString(policy72Local); err != nil {
			b.Fatal(err)
		}
	}
}
