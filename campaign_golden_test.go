package gaaapi

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"gaaapi/internal/scenario"
	"gaaapi/internal/scenario/replay"
)

var updateCampaigns = flag.Bool("update-campaigns", false, "rewrite the recorded campaign traces and golden reports")

const campaignRecordDir = "testdata/scenario/records"

// campaignTrace loads the committed trace for a campaign.
func campaignTrace(t *testing.T, name string) *replay.Replayer {
	t.Helper()
	rp, err := replay.Load(filepath.Join(campaignRecordDir, name+".trace"))
	if err != nil {
		t.Fatalf("load trace (run with -update-campaigns to regenerate): %v", err)
	}
	return rp
}

// TestCampaignReplaySuite replays every committed campaign trace
// through the full driver: all checkpoints must hold, every trace must
// be consumed exactly, and the decision-accounting invariant (check
// decisions == requests - firewalled) must be asserted in every phase.
// The replayer is the target, so the suite issues zero live HTTP
// requests by construction. With -update-campaigns it instead
// re-records every trace from a live in-process run.
func TestCampaignReplaySuite(t *testing.T) {
	for _, c := range scenario.All() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			if *updateCampaigns {
				st, err := scenario.NewStackTarget(c.Stack)
				if err != nil {
					t.Fatal(err)
				}
				defer st.Close()
				rec := replay.NewRecorder(st, c.Name, scenario.DefaultSeed)
				if _, err := scenario.Run(c, rec, scenario.Options{}); err != nil {
					t.Fatal(err)
				}
				if err := rec.Save(filepath.Join(campaignRecordDir, c.Name+".trace")); err != nil {
					t.Fatal(err)
				}
				return
			}

			rp := campaignTrace(t, c.Name)
			rep, err := scenario.Run(c, rp, scenario.Options{Seed: rp.Header().Seed})
			if err != nil {
				t.Fatal(err)
			}
			if err := rp.Done(); err != nil {
				t.Error(err)
			}
			if !rep.Passed {
				for _, f := range rep.Failures {
					t.Error(f)
				}
			}
			for _, ph := range rep.Phases {
				found := false
				for _, ck := range ph.Checks {
					if ck.Name == "decision-accounting" {
						found = true
						if ck.Skipped {
							t.Errorf("phase %s: decision accounting skipped in replay", ph.Name)
						}
						if !ck.Passed {
							t.Errorf("phase %s: decision accounting: want %s, got %s", ph.Name, ck.Want, ck.Got)
						}
					}
				}
				if !found {
					t.Errorf("phase %s: no decision-accounting check", ph.Name)
				}
			}
		})
	}
}

// TestCampaignGoldenReports pins the full canonical JSON report of two
// campaigns, replayed from their committed traces — any drift in the
// driver, the checkpoint evaluation, the decision accounting or the
// report shape shows up as a byte diff.
func TestCampaignGoldenReports(t *testing.T) {
	for _, name := range []string{"credential-stuffing", "flash-crowd", "adaptive-ramp", "adaptive-flap"} {
		name := name
		t.Run(name, func(t *testing.T) {
			c, err := scenario.Find(name)
			if err != nil {
				t.Fatal(err)
			}
			rp := campaignTrace(t, name)
			rep, err := scenario.Run(c, rp, scenario.Options{Seed: rp.Header().Seed})
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if err := rep.WriteJSON(&got); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata/scenario", name+".golden.json")
			if *updateCampaigns {
				if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run with -update-campaigns to regenerate): %v", err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("report drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got.String(), want)
			}
		})
	}
}
