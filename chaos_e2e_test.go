// Chaos end-to-end suite: drives the full protected-server stack while
// internal/faults injectors disturb condition evaluators and the
// notification transport, and asserts the robustness contract of the
// supervision layer (internal/gaa/supervise.go) and the retry/breaker
// wrapper (internal/notify/reliable.go): every request gets a decision,
// evaluator panics and hangs degrade to MAYBE — never a 5xx — and the
// policy's on:failure countermeasures keep firing through a flaky
// notifier.
package gaaapi

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gaaapi/internal/faults"
	"gaaapi/internal/gaahttp"
	"gaaapi/internal/notify"
	"gaaapi/internal/retry"
	"gaaapi/internal/workload"
)

// chaosStack builds the section 7.2 deployment with fault injection on
// evaluators and/or the notifier, retry+breaker on delivery, and a
// 25ms evaluator deadline.
func chaosStack(t *testing.T, evalSpec, notifySpec faults.Spec) (*gaahttp.Stack, *faults.Injector, *faults.Injector) {
	t.Helper()
	evalInj := faults.New(2003, evalSpec)
	notifyInj := faults.New(2004, notifySpec)
	st, err := gaahttp.NewStack(gaahttp.StackConfig{
		SystemPolicy:     policy72System,
		LocalPolicies:    map[string]string{"*": policy72LocalNotify},
		DocRoot:          workload.DocRoot(),
		PolicyCache:      true,
		EvaluatorTimeout: 25 * time.Millisecond,
		EvaluatorWrapper: evalInj.Evaluator,
		NotifierWrapper:  notifyInj.Notifier,
		ReliableNotify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	return st, evalInj, notifyInj
}

func serve(st *gaahttp.Stack, r workload.Request) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	st.Server.ServeHTTP(rec, r.HTTPRequest())
	return rec
}

// TestChaosMixedWorkloadAlwaysAnswered replays the legitimate mix with
// every attack class woven in while evaluators hang, panic, error and
// stall and the notifier flakes. The contract: zero crashed requests,
// every request answered, every injected hang cut at the deadline and
// every panic recovered.
func TestChaosMixedWorkloadAlwaysAnswered(t *testing.T) {
	st, evalInj, _ := chaosStack(t,
		faults.Spec{Hang: 0.02, Panic: 0.05, Error: 0.08, Latency: 0.10, LatencyDur: time.Millisecond},
		faults.Spec{Error: 0.3, Latency: 0.3, LatencyDur: 2 * time.Millisecond},
	)
	mix := workload.Interleave(7, workload.Legit(150, 7), workload.AttackMix())

	answered := 0
	for _, r := range mix {
		rec := serve(st, r)
		if rec.Code >= http.StatusInternalServerError {
			t.Fatalf("%s %s = %d: request crashed under injection", r.Method, r.Target, rec.Code)
		}
		answered++
	}
	if answered != len(mix) {
		t.Fatalf("answered %d of %d requests", answered, len(mix))
	}

	sup := st.API.SupervisionStats()
	es := evalInj.Stats()
	if es.Panics == 0 || es.Hangs == 0 {
		t.Fatalf("injection too quiet to prove anything: %+v", es)
	}
	if sup.Panics != es.Panics {
		t.Errorf("recovered %d of %d injected panics", sup.Panics, es.Panics)
	}
	if sup.Timeouts == 0 {
		t.Errorf("injected %d hangs but recorded no supervised timeout", es.Hangs)
	}
}

// TestChaosPanicYieldsMaybeNot500: with EVERY evaluator panicking, each
// condition degrades to MAYBE, the composed decision is MAYBE, and the
// guard declines to the server's native access control — the paper's
// fallback — instead of crashing the request.
func TestChaosPanicYieldsMaybeNot500(t *testing.T) {
	st, evalInj, _ := chaosStack(t, faults.Spec{Panic: 1}, faults.Spec{})
	rec := serve(st, workload.Request{Method: "GET", Target: "/index.html", ClientIP: "10.0.0.9"})
	if rec.Code != http.StatusOK {
		t.Fatalf("/index.html under total evaluator panic = %d, want 200 via native fallback", rec.Code)
	}
	sup := st.API.SupervisionStats()
	if sup.Panics == 0 || sup.Panics != evalInj.Stats().Panics {
		t.Errorf("supervision stats %+v vs injected %+v: panics not all recovered", sup, evalInj.Stats())
	}
}

// TestChaosHangYieldsMaybeNot500 is the hang twin: every evaluator
// blocks until cut off at the 25ms deadline; the request is answered in
// bounded time with the same MAYBE fallback.
func TestChaosHangYieldsMaybeNot500(t *testing.T) {
	st, _, _ := chaosStack(t, faults.Spec{Hang: 1}, faults.Spec{})
	start := time.Now()
	rec := serve(st, workload.Request{Method: "GET", Target: "/index.html", ClientIP: "10.0.0.9"})
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("hung evaluators = %d, want 200 via native fallback", rec.Code)
	}
	// The request evaluates a handful of conditions, each cut at 25ms;
	// the whole request must stay well under a second.
	if elapsed > 2*time.Second {
		t.Fatalf("request took %v: hangs not cut at the deadline", elapsed)
	}
	if st.API.SupervisionStats().Timeouts == 0 {
		t.Error("no supervised timeout recorded")
	}
}

// TestChaosDenyAndBlacklistSurviveNotifierOutage: the notifier is
// completely dead (every delivery errors). Attacks must still be
// denied, their sources still blacklisted (on:failure/BadGuys), and
// after the breaker's threshold of exhausted deliveries the hot path
// stops paying for the dead transport (short-circuits).
func TestChaosDenyAndBlacklistSurviveNotifierOutage(t *testing.T) {
	st, _, notifyInj := chaosStack(t, faults.Spec{}, faults.Spec{Error: 1})

	attackers := []string{"192.0.2.11", "192.0.2.12", "192.0.2.13", "192.0.2.14", "192.0.2.15"}
	for i, ip := range attackers {
		rec := serve(st, workload.PhfScan(ip))
		if rec.Code != http.StatusForbidden {
			t.Fatalf("attack %d from %s = %d, want 403 despite notifier outage", i, ip, rec.Code)
		}
		if !st.Groups.Contains("BadGuys", ip) {
			t.Fatalf("attacker %s not blacklisted while the notifier is down", ip)
		}
	}

	rs := st.Reliable.Stats()
	if rs.Delivered != 0 {
		t.Errorf("delivered = %d through a dead transport", rs.Delivered)
	}
	if rs.Failures == 0 || rs.Retries == 0 {
		t.Errorf("stats = %+v, want exhausted retried deliveries", rs)
	}
	if rs.Breaker != retry.Open {
		t.Errorf("breaker = %v, want open after sustained failures", rs.Breaker)
	}
	if rs.ShortCircuits == 0 {
		t.Errorf("stats = %+v, want short-circuited deliveries once open", rs)
	}
	if got := notifyInj.Stats().Errors; got == 0 {
		t.Error("injector reports no notifier errors; scenario did not run")
	}
	if st.Mailbox.Count() != 0 {
		t.Errorf("mailbox = %d, want empty", st.Mailbox.Count())
	}
}

// TestChaosNotificationsDeliveredThroughFlakyTransport: with the
// transport failing roughly half its attempts, bounded retry still gets
// the policy's on:failure notifications through.
func TestChaosNotificationsDeliveredThroughFlakyTransport(t *testing.T) {
	st, _, _ := chaosStack(t, faults.Spec{}, faults.Spec{Error: 0.45})
	for i, ip := range []string{"192.0.2.21", "192.0.2.22", "192.0.2.23", "192.0.2.24"} {
		if rec := serve(st, workload.PhfScan(ip)); rec.Code != http.StatusForbidden {
			t.Fatalf("attack %d = %d, want 403", i, rec.Code)
		}
	}
	if st.Mailbox.Count() == 0 {
		t.Errorf("no notification delivered through the flaky transport; reliable stats %+v", st.Reliable.Stats())
	}
	for _, m := range st.Mailbox.Messages() {
		if m.Tag != "cgiexploit" {
			t.Errorf("notification tag = %q, want cgiexploit", m.Tag)
		}
	}
}

// TestChaosRedirectSurvivesInjectedLatency: the adaptive-redirection
// translation of an unevaluated pre_cond_redirect (paper section 6)
// must survive evaluator latency injection — the delayed conditions
// still evaluate, the redirect still fires.
func TestChaosRedirectSurvivesInjectedLatency(t *testing.T) {
	evalInj := faults.New(5, faults.Spec{Latency: 1, LatencyDur: time.Millisecond})
	st, err := gaahttp.NewStack(gaahttp.StackConfig{
		SystemPolicy: policy72System,
		LocalPolicies: map[string]string{"/mirror/*": `
pos_access_right apache *
pre_cond_redirect local http://replica.example.org/
`},
		DocRoot:          map[string]string{"/mirror/data.html": "mirrored"},
		EvaluatorTimeout: 25 * time.Millisecond,
		EvaluatorWrapper: evalInj.Evaluator,
		ReliableNotify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	rec := serve(st, workload.Request{Method: "GET", Target: "/mirror/data.html", ClientIP: "10.0.0.5"})
	if rec.Code != http.StatusFound {
		t.Fatalf("redirect under latency injection = %d, want 302", rec.Code)
	}
	if loc := rec.Header().Get("Location"); loc != "http://replica.example.org/" {
		t.Errorf("Location = %q", loc)
	}
	if evalInj.Stats().Latencies == 0 {
		t.Error("latency injector never fired; scenario did not run")
	}
}

// TestChaosBreakerRecovers closes the loop on the breaker lifecycle at
// the HTTP level: outage trips it open, the cooldown elapses, and the
// next attack's notification probes and re-closes it.
func TestChaosBreakerRecovers(t *testing.T) {
	// Hand-built stack: the breaker needs a short cooldown and the
	// injector must be switchable, so wire Reliable explicitly around a
	// switchable injector chain.
	dead := faults.New(11, faults.Spec{Error: 1})
	mailbox := notify.NewMailbox(0)
	var transport notify.Notifier = dead.Notifier(mailbox)
	healed := false
	switchable := notifierSwitch{healthy: mailbox, faulty: transport, healed: &healed}
	reliable := notify.NewReliable(switchable,
		notify.WithRetryPolicy(retry.Policy{MaxAttempts: 2, BaseDelay: time.Microsecond}),
		notify.WithBreaker(2, 10*time.Millisecond))

	st, err := gaahttp.NewStack(gaahttp.StackConfig{
		SystemPolicy:  policy72System,
		LocalPolicies: map[string]string{"*": policy72LocalNotify},
		DocRoot:       workload.DocRoot(),
		NotifierWrapper: func(notify.Notifier) notify.Notifier {
			return reliable
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Outage: two attacks exhaust their retries and open the breaker.
	for _, ip := range []string{"192.0.2.31", "192.0.2.32"} {
		if rec := serve(st, workload.PhfScan(ip)); rec.Code != http.StatusForbidden {
			t.Fatalf("attack during outage = %d, want 403", rec.Code)
		}
	}
	if got := reliable.BreakerState(); got != retry.Open {
		t.Fatalf("breaker = %v, want open", got)
	}

	// Transport heals; once the 10ms cooldown elapses the next attack's
	// notification is the half-open probe that re-closes the circuit.
	// Poll with fresh source IPs — a reused source is already
	// blacklisted and gets denied before the notify condition fires —
	// until the probe lands or the deadline expires.
	healed = true
	next := 33
	closed := waitFor(t, 10*time.Second, func() {
		ip := fmt.Sprintf("10.66.%d.%d", next/250, next%250)
		next++
		if rec := serve(st, workload.PhfScan(ip)); rec.Code != http.StatusForbidden {
			t.Fatalf("attack after heal = %d, want 403", rec.Code)
		}
	}, func() bool { return reliable.BreakerState() == retry.Closed })
	if !closed {
		t.Fatalf("breaker = %v, want closed after successful probe", reliable.BreakerState())
	}
	if mailbox.Count() == 0 {
		t.Error("probe notification not delivered")
	}
}

// notifierSwitch routes to the faulty transport until *healed flips.
type notifierSwitch struct {
	healthy, faulty notify.Notifier
	healed          *bool
}

func (s notifierSwitch) Notify(ctx context.Context, m notify.Message) error {
	if *s.healed {
		return s.healthy.Notify(ctx, m)
	}
	return s.faulty.Notify(ctx, m)
}
