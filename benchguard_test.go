// Benchmark-regression guard: runs the parallel hot-path workloads at a
// small scale and fails when the cached decision paths regress more
// than 2x against the committed BENCH_parallel.json baselines. The
// small scale makes absolute numbers noisy, so the guard compares each
// scenario's best (minimum) ns/op across concurrency levels against 2x
// the baseline's best — a deliberate-regression tripwire, not a
// precision benchmark. Set GAA_SKIP_BENCH_GUARD=1 to skip (loaded CI
// machines, coverage runs).
package gaaapi

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"gaaapi/internal/experiments"
)

// benchGuardScale runs each scenario at ~1/100 of the full op count —
// comparable to `go test -benchtime=1x` smoke scale, a few thousand
// total ops.
const benchGuardScale = 0.01

// benchGuardFactor is the regression threshold: fail only when the
// cached path got more than 2x slower than the committed baseline.
const benchGuardFactor = 2.0

// benchGuardScenarios are the decision paths the guard pins — the
// cached paths plus the uncached (per-op retrieval, compiled-engine)
// paths; server-e11 and api-grant-interp run too (via the same sweep)
// but are not gated: whole requests through the server are too noisy
// at smoke scale, and the interpreted scan exists only as the
// compiled engine's comparison baseline.
var benchGuardScenarios = []string{
	"guard-cached", "api-grant-cached",
	"guard-uncached", "api-grant-uncached",
}

func TestBenchGuard(t *testing.T) {
	if os.Getenv("GAA_SKIP_BENCH_GUARD") != "" {
		t.Skip("GAA_SKIP_BENCH_GUARD set")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("race detector inflates hot-path timings ~5x; wall-clock guard is meaningless")
	}

	raw, err := os.ReadFile("BENCH_parallel.json")
	if err != nil {
		t.Fatalf("read baseline: %v (regenerate with: go run ./cmd/gaa-bench -parallel -json > BENCH_parallel.json)", err)
	}
	var baseline []experiments.ParallelResult
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatalf("parse BENCH_parallel.json: %v", err)
	}

	results, err := experiments.ParallelResultsScaled(experiments.Options{}, benchGuardScale)
	if err != nil {
		t.Fatalf("run scaled sweep: %v", err)
	}

	best := func(rs []experiments.ParallelResult, scenario string) float64 {
		min := math.Inf(1)
		for _, r := range rs {
			if r.Scenario == scenario && r.NsPerOp < min {
				min = r.NsPerOp
			}
		}
		return min
	}
	for _, scenario := range benchGuardScenarios {
		base := best(baseline, scenario)
		if math.IsInf(base, 1) {
			t.Errorf("scenario %s missing from BENCH_parallel.json baseline", scenario)
			continue
		}
		got := best(results, scenario)
		if math.IsInf(got, 1) {
			t.Errorf("scenario %s missing from scaled sweep", scenario)
			continue
		}
		limit := base * benchGuardFactor
		t.Logf("%s: best %.0f ns/op (baseline %.0f, limit %.0f)", scenario, got, base, limit)
		if got > limit {
			t.Errorf("%s regressed: best %.0f ns/op > %.1fx baseline %.0f ns/op\n"+
				"if this is an accepted cost, regenerate the baseline:\n"+
				"  go run ./cmd/gaa-bench -parallel -json > BENCH_parallel.json",
				scenario, got, benchGuardFactor, base)
		}
	}
}
