package gaaapi

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gaaapi/internal/actions"
	"gaaapi/internal/audit"
	"gaaapi/internal/conditions"
	"gaaapi/internal/gaa"
	"gaaapi/internal/gaahttp"
	"gaaapi/internal/groups"
	"gaaapi/internal/httpd"
	"gaaapi/internal/ids"
	"gaaapi/internal/netblock"
	"gaaapi/internal/notify"
	"gaaapi/internal/workload"
)

// TestEndToEndFileBackedDeployment drives the whole system over real
// TCP with policies stored on disk: the system-wide policy in one
// file, per-directory local policies in .eacl files, credentials in an
// htpasswd file — the paper's deployment shape. It then edits a policy
// file on disk and verifies the change takes effect on the next
// request (the file sources' modification-stamp invalidation).
func TestEndToEndFileBackedDeployment(t *testing.T) {
	dir := t.TempDir()

	sysPath := filepath.Join(dir, "system.eacl")
	writeFile(t, sysPath, `
eacl_mode narrow
neg_access_right * *
pre_cond_accessid_GROUP local BadGuys
`)
	siteDir := filepath.Join(dir, "site")
	mkdirAll(t, filepath.Join(siteDir, "private"))
	writeFile(t, filepath.Join(siteDir, ".eacl"), `
neg_access_right apache *
pre_cond_regex gnu *phf*
rr_cond_notify local on:failure/sysadmin/info:cgiexploit
rr_cond_update_log local on:failure/BadGuys/info:IP
pos_access_right apache *
`)
	writeFile(t, filepath.Join(siteDir, "private", ".eacl"), `
pos_access_right apache *
pre_cond_accessid_USER apache *
`)

	// Wire the full stack by hand (not the Stack helper) to exercise
	// the file-backed sources.
	threat := ids.NewManager(ids.Low)
	grp := groups.NewStore()
	counters := conditions.NewCounters(nil)
	mailbox := notify.NewMailbox(0)
	ring := audit.NewRing(256)
	blocks := netblock.NewSet()
	sigs := ids.NewDB(ids.DefaultSignatures()...)

	api := gaa.New(gaa.WithPolicyCache(64))
	conditions.Register(api, conditions.Deps{Threat: threat, Groups: grp, Counters: counters, Signatures: sigs})
	actions.Register(api, actions.Deps{Notifier: mailbox, Groups: grp, Audit: ring, Threat: threat, Blocks: blocks, Counters: counters})

	guard := gaahttp.New(gaahttp.Config{
		API:    api,
		System: []gaa.PolicySource{gaa.NewFileSource(sysPath)},
		Local:  []gaa.PolicySource{gaa.NewDirSource(siteDir, ".eacl")},
		Audit:  ring,
	})

	htauth := httpd.NewHtpasswd()
	htauth.SetPassword("alice", "wonderland")
	server := httpd.NewServer(httpd.Config{
		DocRoot: map[string]string{
			"/index.html":          "home",
			"/private/secret.html": "classified",
		},
		Scripts: httpd.NewDemoRegistry(),
		Guards:  []httpd.Guard{guard},
		Auth:    htauth,
		Blocks:  blocks,
	})

	ts := httptest.NewServer(server)
	defer ts.Close()
	client := ts.Client()

	get := func(target, user, pass string) (int, string) {
		t.Helper()
		req, err := http.NewRequest("GET", ts.URL+target, nil)
		if err != nil {
			t.Fatal(err)
		}
		if user != "" {
			req.SetBasicAuth(user, pass)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	// Public document over real TCP.
	if code, body := get("/index.html", "", ""); code != http.StatusOK || body != "home" {
		t.Fatalf("/index.html = %d %q", code, body)
	}
	// Per-directory policy: /private requires authentication.
	if code, _ := get("/private/secret.html", "", ""); code != http.StatusUnauthorized {
		t.Errorf("anonymous /private = %d, want 401", code)
	}
	if code, body := get("/private/secret.html", "alice", "wonderland"); code != http.StatusOK || body != "classified" {
		t.Errorf("authenticated /private = %d %q", code, body)
	}
	// Attack detection through the file-backed policy.
	if code, _ := get("/cgi-bin/phf?Qalias=x", "", ""); code != http.StatusForbidden {
		t.Errorf("phf = %d, want 403", code)
	}
	if mailbox.Count() != 1 {
		t.Errorf("notifications = %d, want 1", mailbox.Count())
	}
	// 127.0.0.1 (the test client) is now blacklisted: everything is
	// denied by the mandatory system-wide policy.
	if code, _ := get("/index.html", "", ""); code != http.StatusForbidden {
		t.Errorf("blacklisted home = %d, want 403", code)
	}

	// Un-blacklist and edit the root policy on disk: phf is now
	// allowed (a policy officer retiring the signature). The file
	// sources must observe the change without a restart.
	grp.Remove("BadGuys", "127.0.0.1")
	writeFile(t, filepath.Join(siteDir, ".eacl"), "pos_access_right apache *\n")
	bumpTime(t, filepath.Join(siteDir, ".eacl"))

	if code, _ := get("/cgi-bin/phf?Qalias=x", "", ""); code != http.StatusOK {
		t.Errorf("phf after policy retirement = %d, want 200 (live reload)", code)
	}
}

// TestEndToEndWorkloadOverTCP replays the full experiment workload
// through a real listener and checks the aggregate outcome: all
// attacks denied, all legitimate requests served.
func TestEndToEndWorkloadOverTCP(t *testing.T) {
	// The full signature set covering every class in the attack mix
	// (bench_test.go's policy72Local is the minimal two-signature
	// variant used for timing).
	const fullLocalPolicy = `
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi* *///////////////////* *%c0%af* *%255c* *cmd.exe*
rr_cond_update_log local on:failure/BadGuys/info:IP
neg_access_right apache *
pre_cond_expr local input_length>1000
rr_cond_update_log local on:failure/BadGuys/info:IP
pos_access_right apache *
`
	st, err := gaahttp.NewStack(gaahttp.StackConfig{
		SystemPolicy:  policy72System,
		LocalPolicies: map[string]string{"*": fullLocalPolicy},
		DocRoot:       workload.DocRoot(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ts := httptest.NewServer(st.Server)
	defer ts.Close()
	client := ts.Client()

	do := func(r workload.Request) int {
		t.Helper()
		req, err := http.NewRequest(r.Method, ts.URL+r.Target, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// NOTE: over real TCP every request comes from 127.0.0.1, so the
	// blacklist must stay clear between attack classes for legit
	// traffic to flow afterwards.
	for _, atk := range workload.AttackMix() {
		if code := do(atk); code != http.StatusForbidden {
			t.Errorf("%s = %d, want 403", atk.Attack, code)
		}
		st.Groups.Remove("BadGuys", "127.0.0.1")
	}
	served := 0
	for _, r := range workload.Legit(50, 1) {
		if do(r) == http.StatusOK {
			served++
		}
	}
	if served != 50 {
		t.Errorf("legit served = %d/50", served)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func mkdirAll(t *testing.T, path string) {
	t.Helper()
	if err := os.MkdirAll(path, 0o755); err != nil {
		t.Fatal(err)
	}
}

// bumpTime advances a file's mtime so stamp-based caches observe the
// change even on coarse-resolution filesystems.
func bumpTime(t *testing.T, path string) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	nt := fi.ModTime().Add(2 * time.Second)
	if err := os.Chtimes(path, nt, nt); err != nil {
		t.Fatal(err)
	}
}
