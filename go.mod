module gaaapi

go 1.22
