// Crash-recovery end-to-end suite (run with -run Recovery): kill the
// protected server mid-burst — in-process by abandoning a stack without
// Close, and for real with SIGKILL on a gaa-httpd subprocess — restart
// it on the same state directory, and assert the adaptive state the
// attack workload built up (firewall blocks with their original
// deadlines, threat level, lockout counters, blacklist groups) survives
// and keeps being enforced.
package gaaapi

import (
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gaaapi/internal/conditions"
	"gaaapi/internal/gaahttp"
	"gaaapi/internal/ids"
	"gaaapi/internal/workload"
)

// recoveryLocal escalates on a phf probe with every adaptive
// countermeasure the store persists: blacklist group, threat level,
// timed firewall block, and a lockout counter.
const recoveryLocal = `
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi*
rr_cond_update_log local on:failure/BadGuys/info:IP
rr_cond_set_threat_level local on:failure/high
rr_cond_block_ip local on:failure/duration:10m
rr_cond_count local on:failure/cgi_probe
pos_access_right apache *
`

func recoveryStack(t *testing.T, dir string) *gaahttp.Stack {
	t.Helper()
	st, err := gaahttp.NewStack(gaahttp.StackConfig{
		SystemPolicy:  policy72System,
		LocalPolicies: map[string]string{"*": recoveryLocal},
		DocRoot:       workload.DocRoot(),
		PolicyCache:   true,
		StateDir:      dir,
		Fsync:         "never", // kill -9 model: the OS survives, fsync is not what saves us
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRecoveryKillRestartInProcess drives the section 7.2 workload,
// abandons the stack without Close (the in-process kill -9: buffered
// WAL bytes are visible to a reopen through the page cache), restarts
// on the same directory and checks every adaptive artifact of the
// attack burst is restored and still enforced.
func TestRecoveryKillRestartInProcess(t *testing.T) {
	dir := t.TempDir()
	st1 := recoveryStack(t, dir)

	attackers := []string{"192.0.2.41", "192.0.2.42", "192.0.2.43"}
	for i, r := range workload.Interleave(7, workload.Legit(30, 7), nil) {
		if rec := serve(st1, r); rec.Code != http.StatusOK {
			t.Fatalf("legit request %d = %d before the burst", i, rec.Code)
		}
	}
	for _, ip := range attackers {
		if rec := serve(st1, workload.PhfScan(ip)); rec.Code != http.StatusForbidden {
			t.Fatalf("attack from %s = %d, want 403", ip, rec.Code)
		}
	}

	if st1.Threat.Level() != ids.High {
		t.Fatalf("threat = %v after burst, want high", st1.Threat.Level())
	}
	before := st1.Blocks.Entries()
	if len(before) != len(attackers) {
		t.Fatalf("blocks before kill = %+v, want %d", before, len(attackers))
	}
	for _, ip := range attackers {
		if got := st1.Counters.CountSince(conditions.CounterKey("cgi_probe", ip), time.Hour); got != 1 {
			t.Fatalf("lockout counter for %s = %d, want 1", ip, got)
		}
	}

	// Kill -9: no Close, no Sync, no compaction. Reopen the directory.
	st2 := recoveryStack(t, dir)
	defer st2.Close()

	if st2.Threat.Level() != ids.High {
		t.Fatalf("restored threat = %v, want high", st2.Threat.Level())
	}
	after := st2.Blocks.Entries()
	if len(after) != len(before) {
		t.Fatalf("restored blocks = %+v, want %+v", after, before)
	}
	for i := range before {
		if after[i].Addr != before[i].Addr || !after[i].Expiry.Equal(before[i].Expiry) ||
			after[i].Permanent != before[i].Permanent {
			t.Fatalf("block %d restored as %+v, want %+v (original deadline lost)",
				i, after[i], before[i])
		}
	}
	for _, ip := range attackers {
		if got := st2.Counters.CountSince(conditions.CounterKey("cgi_probe", ip), time.Hour); got != 1 {
			t.Fatalf("restored lockout counter for %s = %d, want 1", ip, got)
		}
	}
	sum := st2.Persist.Restored()
	if sum.Blocks != len(attackers) || sum.ThreatLevel != "high" || sum.GroupMembers != len(attackers) {
		t.Fatalf("restore summary = %+v", sum)
	}

	// Enforcement, not just bookkeeping: every attacker is still denied
	// (netblock + BadGuys), a clean client still passes — no mis-grants,
	// no collateral lockout.
	for _, ip := range attackers {
		if !st2.Groups.Contains("BadGuys", ip) {
			t.Fatalf("attacker %s missing from restored blacklist", ip)
		}
		if !st2.Blocks.Blocked(ip) {
			t.Fatalf("attacker %s not firewall-blocked after restart", ip)
		}
		rec := serve(st2, workload.Request{Method: "GET", Target: "/index.html", ClientIP: ip})
		if rec.Code != http.StatusForbidden {
			t.Fatalf("restored state mis-granted %s: GET /index.html = %d", ip, rec.Code)
		}
	}
	if rec := serve(st2, workload.Request{Method: "GET", Target: "/index.html", ClientIP: "10.0.0.9"}); rec.Code != http.StatusOK {
		t.Fatalf("legit client denied after restart: %d", rec.Code)
	}
}

// TestRecoveryExpiredBlocksNotResurrected: a block whose deadline
// passed while the server was down must not come back.
func TestRecoveryExpiredBlocksNotResurrected(t *testing.T) {
	dir := t.TempDir()
	st1 := recoveryStack(t, dir)
	st1.Blocks.Block("192.0.2.50", 50*time.Millisecond) // journaled via the stack's wiring
	st1.Blocks.Block("192.0.2.51", time.Hour)
	if !waitFor(t, 10*time.Second, nil, func() bool { return !st1.Blocks.Blocked("192.0.2.50") }) {
		t.Fatal("50ms block never expired")
	}

	st2 := recoveryStack(t, dir)
	defer st2.Close()
	if st2.Blocks.Blocked("192.0.2.50") {
		t.Fatal("expired block resurrected by replay")
	}
	if !st2.Blocks.Blocked("192.0.2.51") {
		t.Fatal("live block lost")
	}
	if sum := st2.Persist.Restored(); sum.Blocks != 1 || sum.ExpiredBlocks != 1 {
		t.Fatalf("restore summary = %+v, want 1 live / 1 expired", sum)
	}
}

// TestRecoverySubprocessKill9 is the real thing: a gaa-httpd child
// process takes an attack burst over HTTP, dies on SIGKILL mid-run, and
// a fresh process on the same -state-dir must report the restored
// blacklist and threat level on /gaa/status.
func TestRecoverySubprocessKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a subprocess")
	}
	bin := filepath.Join(t.TempDir(), "gaa-httpd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/gaa-httpd").CombinedOutput(); err != nil {
		t.Fatalf("build gaa-httpd: %v\n%s", err, out)
	}
	stateDir := t.TempDir()
	addr := freeAddr(t)
	base := "http://" + addr

	start := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-listen", addr,
			"-state-dir", stateDir,
			"-fsync", "always",
			"-snapshot-interval", "1h")
		cmd.Stdout = io.Discard
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatalf("start gaa-httpd: %v", err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
		waitHTTP(t, base+"/gaa/status")
		return cmd
	}

	first := start()
	// Attack burst: the demo policy blacklists the source, escalates the
	// threat level and records the probes.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(base + "/cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd")
		if err != nil {
			t.Fatalf("attack %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("attack %d = %d, want 403", i, resp.StatusCode)
		}
	}
	preStatus := httpBody(t, base+"/gaa/status")
	preThreat := statusLine(t, preStatus, "threat level:")
	preBadGuys := statusLine(t, preStatus, "BadGuys:")
	if !strings.Contains(preBadGuys, "127.0.0.1") {
		t.Fatalf("attacker not blacklisted before kill: %q", preBadGuys)
	}

	// SIGKILL mid-burst: no graceful shutdown, no final compaction.
	if err := first.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	first.Wait()

	start()
	postStatus := httpBody(t, base+"/gaa/status")
	if got := statusLine(t, postStatus, "threat level:"); got != preThreat {
		t.Fatalf("threat after restart = %q, want %q", got, preThreat)
	}
	if got := statusLine(t, postStatus, "BadGuys:"); got != preBadGuys {
		t.Fatalf("blacklist after restart = %q, want %q", got, preBadGuys)
	}
	recLine := statusLine(t, postStatus, "state recovery:")
	if !strings.Contains(recLine, "replayed=") || strings.Contains(recLine, "replayed=0") {
		t.Fatalf("restart did not replay the WAL: %q", recLine)
	}

	// The restored blacklist must still be enforced over HTTP.
	resp, err := http.Get(base + "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("blacklisted client after restart = %d, want 403", resp.StatusCode)
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHTTP(t *testing.T, url string) {
	t.Helper()
	if !waitFor(t, 10*time.Second, nil, func() bool {
		resp, err := http.Get(url)
		if err != nil {
			return false
		}
		resp.Body.Close()
		return true
	}) {
		t.Fatalf("server at %s never came up", url)
	}
}

func httpBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func statusLine(t *testing.T, body, prefix string) string {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	t.Fatalf("status output has no %q line:\n%s", prefix, body)
	return ""
}
