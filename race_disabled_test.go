//go:build !race

package gaaapi

const raceEnabled = false
