package gaaapi

import (
	"path/filepath"
	"testing"

	"gaaapi/internal/conditions"
	"gaaapi/internal/config"
	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/groups"
	"gaaapi/internal/ids"
)

// TestShippedPoliciesValidate parses and lints every policy file
// shipped under policies/, against the routine registry the shipped
// gaa.conf declares — so the repo's own artifacts never rot.
func TestShippedPoliciesValidate(t *testing.T) {
	cfg, err := config.ParseFile("policies/paper/gaa.conf")
	if err != nil {
		t.Fatalf("shipped gaa.conf does not parse: %v", err)
	}
	api := gaa.New()
	deps := config.Deps{}
	deps.Conditions.Threat = ids.NewManager(ids.Low)
	deps.Conditions.Groups = groups.NewStore()
	if err := cfg.Apply(api, deps); err != nil {
		t.Fatalf("shipped gaa.conf does not apply: %v", err)
	}

	paths, err := filepath.Glob("policies/paper/*.eacl")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("shipped policies = %v, want 4", paths)
	}
	for _, path := range paths {
		e, err := eacl.ParseFile(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		for _, f := range eacl.Validate(e, eacl.ValidateOptions{KnownCondition: api.Known}) {
			t.Errorf("%s: %s", path, f)
		}
	}
}

// TestShippedPoliciesBehave loads the shipped 7.2 pair through the
// GAA-API and checks the headline behaviour.
func TestShippedPoliciesBehave(t *testing.T) {
	sys, err := eacl.ParseFile("policies/paper/system-7.2.eacl")
	if err != nil {
		t.Fatal(err)
	}
	loc, err := eacl.ParseFile("policies/paper/local-7.2.eacl")
	if err != nil {
		t.Fatal(err)
	}

	values := gaa.NewValues()
	values.Set("max_input", "1000")
	api := gaa.New(gaa.WithValues(values))
	grp := groups.NewStore()
	conditions.Register(api, conditions.Deps{Threat: ids.NewManager(ids.Low), Groups: grp})

	p := gaa.NewPolicy("/cgi-bin/phf", []*eacl.EACL{sys}, []*eacl.EACL{loc})
	attack := gaa.NewRequest("apache", "GET /cgi-bin/phf",
		gaa.Param{Type: gaa.ParamRequestURI, Authority: gaa.AuthorityAny, Value: "GET /cgi-bin/phf?Q=x"},
		gaa.Param{Type: gaa.ParamClientIP, Authority: gaa.AuthorityAny, Value: "10.0.0.66"},
		gaa.Param{Type: gaa.ParamInputLength, Authority: gaa.AuthorityAny, Value: "10"},
	)
	ans, err := api.CheckAuthorization(t.Context(), p, attack)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Decision != gaa.No {
		t.Errorf("shipped policy phf decision = %v, want no", ans.Decision)
	}
}
