package main

import (
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list output missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunSubset(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-run", "e2,e6", "-trials", "1", "-notify", "1ms"}, &out)
	if err != nil {
		t.Fatalf("run e2,e6: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "E2: network lockdown") {
		t.Errorf("missing E2 table:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "E6: composition mode semantics") {
		t.Errorf("missing E6 table:\n%s", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "e99"}, &out); err == nil {
		t.Error("want error for unknown experiment id")
	}
}

func TestBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Error("want flag parse error")
	}
}
