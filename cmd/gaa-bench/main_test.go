package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list output missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunSubset(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-run", "e2,e6", "-trials", "1", "-notify", "1ms"}, &out)
	if err != nil {
		t.Fatalf("run e2,e6: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "E2: network lockdown") {
		t.Errorf("missing E2 table:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "E6: composition mode semantics") {
		t.Errorf("missing E6 table:\n%s", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "e99"}, &out); err == nil {
		t.Error("want error for unknown experiment id")
	}
}

func TestBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Error("want flag parse error")
	}
}

// TestCampaignsTable: the campaign load-test sweep prints one row per
// phase and succeeds when every checkpoint holds.
func TestCampaignsTable(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-campaigns"}, &out); err != nil {
		t.Fatalf("run -campaigns: %v\n%s", err, out.String())
	}
	for _, want := range []string{"credential-stuffing", "threat-ladder", "p95(us)", "ok"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("campaigns table missing %q:\n%s", want, out.String())
		}
	}
}

// TestCampaignsJSON: -campaigns -json emits the BENCH_campaigns.json
// shape with decision accounting per phase.
func TestCampaignsJSON(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-campaigns", "-json"}, &out); err != nil {
		t.Fatalf("run -campaigns -json: %v", err)
	}
	var doc struct {
		Campaigns []struct {
			Campaign string `json:"campaign"`
			Passed   bool   `json:"passed"`
			Phases   []struct {
				AccountingOK bool `json:"accounting_ok"`
			} `json:"phases"`
		} `json:"campaigns"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out.String())
	}
	if len(doc.Campaigns) != 8 {
		t.Fatalf("campaigns = %d, want 8", len(doc.Campaigns))
	}
	for _, c := range doc.Campaigns {
		if !c.Passed {
			t.Errorf("campaign %s failed", c.Campaign)
		}
		for _, ph := range c.Phases {
			if !ph.AccountingOK {
				t.Errorf("campaign %s: decision accounting mismatch", c.Campaign)
			}
		}
	}
}
