// Command gaa-bench regenerates every experiment table indexed in
// DESIGN.md section 4 (E1 is the paper's section 8 performance table;
// E2/E3 are the section 7 deployments; E4-E8 are ablations).
//
// Usage:
//
//	gaa-bench                 # run every experiment
//	gaa-bench -run e1,e3      # run a subset
//	gaa-bench -trials 20      # the paper's trial count (default)
//	gaa-bench -notify 47ms    # synthetic notification latency
//	gaa-bench -parallel       # parallel decision-path throughput sweep
//	gaa-bench -parallel -json # same, as JSON (BENCH_parallel.json)
//	gaa-bench -observability  # metrics-instrumentation overhead
//	                          # (-json: BENCH_observability.json)
//	gaa-bench -campaigns      # every attack campaign as a load test
//	                          # (-json: BENCH_campaigns.json)
//	gaa-bench -drill          # fault drill: seeded evaluator/notifier
//	                          # fault injection; non-zero exit on crash
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"gaaapi/internal/experiments"
	"gaaapi/internal/faults"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gaa-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gaa-bench", flag.ContinueOnError)
	var (
		runList  = fs.String("run", "", "comma-separated experiment ids (e1..e8); empty = all")
		trials   = fs.Int("trials", 20, "measurement trials per cell (paper protocol: 20)")
		notify   = fs.Duration("notify", 47*time.Millisecond, "synthetic notification latency")
		seed     = fs.Int64("seed", 2003, "workload seed")
		list     = fs.Bool("list", false, "list experiments and exit")
		parallel = fs.Bool("parallel", false, "run the parallel throughput sweep (1/4/16 goroutines) instead of the experiment tables")
		observ   = fs.Bool("observability", false, "measure metrics-instrumentation overhead (bare vs gaa.WithMetrics) instead of the experiment tables")
		camps    = fs.Bool("campaigns", false, "run every attack campaign as a load test (per-phase latency + decision accounting) instead of the experiment tables")
		jsonOut  = fs.Bool("json", false, "with -parallel, -observability or -campaigns: emit machine-readable JSON")

		drill       = fs.Bool("drill", false, "run a fault drill (seeded fault injection over the section 7.2 deployment) instead of the experiment tables")
		drillN      = fs.Int("drill-requests", 400, "with -drill: legitimate-workload size")
		faultEval   = fs.String("fault-evaluators", "hang=0.02,panic=0.05,error=0.08,latency=0.1:2ms", "with -drill: evaluator fault injection spec")
		faultNotify = fs.String("fault-notifier", "error=0.3,latency=0.3:5ms", "with -drill: notifier fault injection spec")
		faultDisk   = fs.String("fault-disk", "", `with -drill: state-store disk fault spec, e.g. "disk=0.05" (short writes + fsync errors over a temp -state-dir)`)
		evalTimeout = fs.Duration("evaluator-timeout", 25*time.Millisecond, "with -drill: per-evaluator deadline cutting off injected hangs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := experiments.Options{Trials: *trials, NotifyLatency: *notify, Seed: *seed}

	if *drill {
		evalSpec, err := faults.ParseSpec(*faultEval)
		if err != nil {
			return fmt.Errorf("-fault-evaluators: %w", err)
		}
		notifySpec, err := faults.ParseSpec(*faultNotify)
		if err != nil {
			return fmt.Errorf("-fault-notifier: %w", err)
		}
		diskSpec, err := faults.ParseSpec(*faultDisk)
		if err != nil {
			return fmt.Errorf("-fault-disk: %w", err)
		}
		do := experiments.FaultDrillOptions{
			Requests:   *drillN,
			Seed:       *seed,
			EvalSpec:   evalSpec,
			NotifySpec: notifySpec,
			DiskSpec:   diskSpec,
			Timeout:    *evalTimeout,
		}
		if diskSpec.Active() {
			dir, err := os.MkdirTemp("", "gaa-drill-state-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			do.StateDir = dir
		}
		return experiments.FaultDrill(out, do)
	}

	if *parallel {
		if !*jsonOut {
			return experiments.Parallel(out, opts)
		}
		results, err := experiments.ParallelResults(opts)
		if err != nil {
			return err
		}
		return experiments.WriteParallelJSON(out, results)
	}
	if *observ {
		if !*jsonOut {
			return experiments.Observability(out, opts)
		}
		results, err := experiments.ObservabilityResults(opts, 1)
		if err != nil {
			return err
		}
		return experiments.WriteObservabilityJSON(out, results)
	}
	if *camps {
		if !*jsonOut {
			return experiments.Campaigns(out, opts)
		}
		results, err := experiments.CampaignResults(opts)
		if err != nil {
			return err
		}
		if err := experiments.WriteCampaignsJSON(out, results); err != nil {
			return err
		}
		failed := 0
		for _, cb := range results {
			if !cb.Passed {
				failed++
			}
		}
		if failed > 0 {
			return fmt.Errorf("%d campaign(s) failed", failed)
		}
		return nil
	}
	if *jsonOut {
		return fmt.Errorf("-json requires -parallel, -observability or -campaigns")
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Fprintf(out, "%-4s %s\n", r.ID, r.Title)
		}
		return nil
	}

	var runners []experiments.Runner
	if *runList == "" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			r, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			runners = append(runners, r)
		}
	}

	failed := 0
	for _, r := range runners {
		fmt.Fprintf(out, "--- %s: %s ---\n\n", r.ID, r.Title)
		if err := r.Run(out, opts); err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", r.ID, err)
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	return nil
}
