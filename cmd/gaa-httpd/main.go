// Command gaa-httpd runs the GAA-protected web server: the Apache
// analog with the GAA-API guard in front of its native .htaccess
// access control, the demo CGI scripts, and the IDS feedback loop
// (signature reports escalate the threat level, which the policies
// read back).
//
// Usage:
//
//	gaa-httpd -listen :8080 \
//	    -system system.eacl -local-dir ./site -docroot ./site \
//	    -htpasswd users.htpasswd -groups groups.txt
//
// Without -system/-local-dir it serves a built-in demonstration
// deployment: the paper's section 7.1 lockdown policy plus the section
// 7.2 CGI protections over a small document tree. Admin endpoints:
//
//	GET  /gaa/status  — threat level, blacklist, block set, audit tail,
//	                    state-store and reload statistics
//	POST /gaa/reload  — re-parse and analyze the policy set; swap it in
//	                    atomically only when clean at severity < error
//	GET  /gaa/metrics — Prometheus text exposition: phase latency,
//	                    decisions, cache, supervision, notifier, state
//	                    store, threat level (disable with -metrics=false)
//	GET  /gaa/healthz — readiness report: state recovery, policy
//	                    generation, replication convergence (503 only
//	                    while replication is catching up)
//
// With -pprof the Go runtime profiles are served under /debug/pprof/.
// SIGHUP triggers the same validated reload. With -state-dir the
// adaptive state (blocks with their expiries, threat level, lockout
// counters, blacklist groups) is journaled and survives kill -9.
//
// With -node-id and -peers the server joins a replication fleet:
// every adaptive-state mutation is pushed to each peer's
// POST /gaa/replicate endpoint, so a block earned on one node is
// enforced by all of them (DESIGN.md "Cluster replication").
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"gaaapi/internal/actions"
	"gaaapi/internal/audit"
	"gaaapi/internal/cluster"
	"gaaapi/internal/conditions"
	"gaaapi/internal/eacl"
	"gaaapi/internal/faults"
	"gaaapi/internal/gaa"
	"gaaapi/internal/gaahttp"
	"gaaapi/internal/groups"
	"gaaapi/internal/httpd"
	"gaaapi/internal/ids"
	"gaaapi/internal/ids/adaptive"
	"gaaapi/internal/metrics"
	"gaaapi/internal/netblock"
	"gaaapi/internal/notify"
	"gaaapi/internal/statestore"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gaa-httpd:", err)
		os.Exit(1)
	}
}

const demoSystemPolicy = `
eacl_mode narrow
neg_access_right * *
pre_cond_system_threat_level local =high
neg_access_right * *
pre_cond_accessid_GROUP local BadGuys
`

const demoLocalPolicy = `
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi* *///////////////////* *%c0%af* *%255c* *cmd.exe*
rr_cond_notify local on:failure/sysadmin/info:cgiexploit
rr_cond_update_log local on:failure/BadGuys/info:IP
rr_cond_set_threat_level local on:failure/medium
neg_access_right apache *
pre_cond_expr local input_length>@max_input
rr_cond_update_log local on:failure/BadGuys/info:IP
pos_access_right apache *
mid_cond_quota local cpu_ms<=250
`

// options are the parsed command-line settings.
type options struct {
	listen     string
	systemPath string
	localDir   string
	htpasswdF  string
	groupsFile string
	accessLog  string
	docRoot    string
	notifyLat  time.Duration

	// Robustness & fault-drill knobs (DESIGN.md "Robustness & fault
	// drills").
	evalTimeout time.Duration
	faultSeed   int64
	faultEval   string
	faultNotify string
	faultDisk   string

	// Durability knobs (DESIGN.md "Durability & live reload").
	stateDir     string
	fsyncPolicy  string
	snapInterval time.Duration

	// Cluster knobs (DESIGN.md "Cluster replication").
	nodeID       string
	peers        string
	pushInterval time.Duration

	// Adaptive detection knobs (DESIGN.md "Adaptive detection").
	adaptiveOn         bool
	adaptiveBlockScore float64
	adaptiveBlockFor   time.Duration
	adaptiveDwell      time.Duration

	// Observability knobs.
	metrics bool
	pprof   bool
}

func parseOptions(args []string) (options, error) {
	fs := flag.NewFlagSet("gaa-httpd", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.listen, "listen", ":8080", "listen address")
	fs.StringVar(&o.systemPath, "system", "", "system-wide EACL policy file (empty: demo policy)")
	fs.StringVar(&o.localDir, "local-dir", "", "directory tree searched for .eacl local policies")
	fs.StringVar(&o.htpasswdF, "htpasswd", "", "htpasswd credential file")
	fs.StringVar(&o.groupsFile, "groups", "", "persistent group (blacklist) file")
	fs.StringVar(&o.accessLog, "access-log", "", "common-log-format access log path (empty: stdout)")
	fs.StringVar(&o.docRoot, "docroot", "", "serve static documents from this directory (empty: built-in demo pages)")
	fs.DurationVar(&o.notifyLat, "notify-latency", 0, "synthetic notification latency")
	fs.DurationVar(&o.evalTimeout, "evaluator-timeout", 0, "per-evaluator deadline; a hung or slow condition evaluator degrades to MAYBE (0: off)")
	fs.Int64Var(&o.faultSeed, "fault-seed", 1, "seed for the deterministic fault injectors")
	fs.StringVar(&o.faultEval, "fault-evaluators", "", `evaluator fault injection spec, e.g. "hang=0.01,panic=0.02,error=0.05,latency=0.1:20ms"`)
	fs.StringVar(&o.faultNotify, "fault-notifier", "", `notifier fault injection spec, same syntax as -fault-evaluators`)
	fs.StringVar(&o.faultDisk, "fault-disk", "", `state-store disk fault injection spec, e.g. "disk=0.05" (short writes + fsync errors)`)
	fs.StringVar(&o.stateDir, "state-dir", "", "journal adaptive state (blocks, threat level, lockouts, blacklists) under this directory so it survives crashes")
	fs.StringVar(&o.fsyncPolicy, "fsync", "interval", "state WAL fsync policy: always|interval|never")
	fs.DurationVar(&o.snapInterval, "snapshot-interval", 30*time.Second, "compact the state WAL into a snapshot this often (0: count-driven only)")
	fs.StringVar(&o.nodeID, "node-id", "", "unique cluster node name; enables replication when -peers is set")
	fs.StringVar(&o.peers, "peers", "", "comma-separated peer base URLs (e.g. http://host2:8080,http://host3:8080) to replicate adaptive state to")
	fs.DurationVar(&o.pushInterval, "replication-interval", 0, "idle replication push interval (0: built-in default)")
	fs.BoolVar(&o.adaptiveOn, "adaptive", false, "enable self-adaptive per-source threat scoring (learned profiles drive the threat level and per-source blocks)")
	fs.Float64Var(&o.adaptiveBlockScore, "adaptive-block-score", 0, "per-source anomaly score that triggers a block (0: built-in default)")
	fs.DurationVar(&o.adaptiveBlockFor, "adaptive-block-for", 0, "duration of score-triggered source blocks (0: built-in default)")
	fs.DurationVar(&o.adaptiveDwell, "adaptive-dwell", 0, "minimum time between adaptive threat-level changes before a lower is allowed (0: built-in default)")
	fs.BoolVar(&o.metrics, "metrics", true, "serve Prometheus text metrics at /gaa/metrics")
	fs.BoolVar(&o.pprof, "pprof", false, "serve runtime profiles under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	return o, nil
}

// deployment is the wired server plus the state its admin endpoint and
// shutdown path need.
type deployment struct {
	handler  http.Handler
	threat   *ids.Manager
	groups   *groups.Store
	reloader *gaahttp.Reloader
	store    *statestore.Store
	cluster  *cluster.Node
	metrics  *metrics.Registry
	close    func()
}

// loadBundle parses the configured policy set fresh from disk (or the
// demo constants) for validated startup and reload.
func loadBundle(o options) (*gaahttp.PolicyBundle, error) {
	b := &gaahttp.PolicyBundle{}
	sysText, sysName := demoSystemPolicy, "demo-system"
	if o.systemPath != "" {
		raw, err := os.ReadFile(o.systemPath)
		if err != nil {
			return nil, fmt.Errorf("system policy: %w", err)
		}
		sysText, sysName = string(raw), o.systemPath
	}
	sysEACL, err := eacl.ParseString(sysText)
	if err != nil {
		return nil, fmt.Errorf("system policy %s: %w", sysName, err)
	}
	sysMem := gaa.NewMemorySource()
	sysMem.Add("*", sysEACL)
	b.System, b.SystemEACLs = sysMem, []*eacl.EACL{sysEACL}

	if o.localDir != "" {
		// Serving keeps the per-directory DirSource semantics; analysis
		// vets every .eacl under the tree as of this reload.
		err := filepath.WalkDir(o.localDir, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() || d.Name() != ".eacl" {
				return err
			}
			e, perr := eacl.ParseFile(path)
			if perr != nil {
				return fmt.Errorf("local policy %s: %w", path, perr)
			}
			b.LocalEACLs = append(b.LocalEACLs, e)
			return nil
		})
		if err != nil {
			return nil, err
		}
		b.Local = gaa.NewDirSource(o.localDir, ".eacl")
	} else {
		locEACL, err := eacl.ParseString(demoLocalPolicy)
		if err != nil {
			return nil, fmt.Errorf("demo local policy: %w", err)
		}
		locMem := gaa.NewMemorySource()
		locMem.Add("*", locEACL)
		b.Local, b.LocalEACLs = locMem, []*eacl.EACL{locEACL}
	}
	return b, nil
}

func buildDeployment(o options) (*deployment, error) {
	// Substrate services.
	threat := ids.NewManager(ids.Low)
	bus := ids.NewBus()
	sigs := ids.NewDB(ids.DefaultSignatures()...)
	grp := groups.NewStore()
	counters := conditions.NewCounters(nil)
	blocks := netblock.NewSet()
	ring := audit.NewRing(4096)
	mailbox := notify.NewMailbox(o.notifyLat)

	// Fault drill wiring: seeded injectors wrap the notifier transport
	// and every registered evaluator; the retry/breaker layer and the
	// evaluator supervision absorb what they inject.
	evalSpec, err := faults.ParseSpec(o.faultEval)
	if err != nil {
		return nil, fmt.Errorf("-fault-evaluators: %w", err)
	}
	notifySpec, err := faults.ParseSpec(o.faultNotify)
	if err != nil {
		return nil, fmt.Errorf("-fault-notifier: %w", err)
	}
	diskSpec, err := faults.ParseSpec(o.faultDisk)
	if err != nil {
		return nil, fmt.Errorf("-fault-disk: %w", err)
	}
	evalInj := faults.New(o.faultSeed, evalSpec)
	notifyInj := faults.New(o.faultSeed+1, notifySpec)
	diskInj := faults.New(o.faultSeed+2, diskSpec)

	// Self-adaptive threat scoring: built before statestore.Attach so
	// restore and journaling cover its score/profile records.
	var scorer *adaptive.Engine
	if o.adaptiveOn {
		acfg := adaptive.Defaults()
		if o.adaptiveBlockScore > 0 {
			acfg.BlockScore = o.adaptiveBlockScore
		}
		if o.adaptiveBlockFor > 0 {
			acfg.BlockFor = o.adaptiveBlockFor
		}
		if o.adaptiveDwell > 0 {
			acfg.Dwell = o.adaptiveDwell
		}
		scorer = adaptive.New(acfg, threat, blocks)
	}

	// Crash-safe adaptive state: restore what a previous process
	// journaled into the components, then journal every further
	// mutation. Must happen before any traffic (or the groups file)
	// mutates them.
	var (
		store   *statestore.Store
		persist *statestore.Adaptive
	)
	if o.stateDir != "" {
		fsyncPolicy, err := statestore.ParseFsyncPolicy(o.fsyncPolicy)
		if err != nil {
			return nil, err
		}
		storeFS := statestore.OS
		if diskSpec.Active() {
			storeFS = diskInj.FS(storeFS)
		}
		store, err = statestore.Open(o.stateDir, statestore.Options{
			Fsync:            fsyncPolicy,
			SnapshotInterval: o.snapInterval,
			FS:               storeFS,
		})
		if err != nil {
			return nil, err
		}
		persist, err = statestore.Attach(store, statestore.Components{
			Blocks:   blocks,
			Threat:   threat,
			Counters: counters,
			Groups:   grp,
			Scorer:   scorer,
		})
		if err != nil {
			store.Close()
			return nil, err
		}
	}

	// Cluster replication: ship every adaptive-state mutation to the
	// peers and apply theirs. The node is created here (so the journal
	// mirror tap sees all traffic-driven mutations) but its pushers
	// only start once the deployment is fully wired — failure paths
	// below then have no goroutines to unwind.
	var node *cluster.Node
	if o.peers != "" || o.nodeID != "" {
		if o.nodeID == "" {
			if store != nil {
				store.Close()
			}
			return nil, fmt.Errorf("-peers requires -node-id (a unique name per fleet member)")
		}
		if persist == nil {
			// No -state-dir: replicate from a memory-only attachment.
			persist, err = statestore.Attach(nil, statestore.Components{
				Blocks:   blocks,
				Threat:   threat,
				Counters: counters,
				Groups:   grp,
				Scorer:   scorer,
			})
			if err != nil {
				return nil, err
			}
		}
		var peerURLs []string
		for _, p := range strings.Split(o.peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerURLs = append(peerURLs, p)
			}
		}
		node, err = cluster.New(cluster.Config{
			NodeID:       o.nodeID,
			Peers:        peerURLs,
			State:        persist,
			Transport:    cluster.NewHTTPTransport(nil),
			PushInterval: o.pushInterval,
		})
		if err != nil {
			if store != nil {
				store.Close()
			}
			return nil, fmt.Errorf("cluster: %w", err)
		}
	}

	var transport notify.Notifier = mailbox
	if notifySpec.Active() {
		transport = notifyInj.Notifier(transport)
	}
	reliable := notify.NewReliable(transport)
	async := notify.NewAsync(reliable, 1024)

	if o.groupsFile != "" {
		if err := grp.LoadFile(o.groupsFile); err != nil {
			async.Close()
			if store != nil {
				store.Close()
			}
			return nil, fmt.Errorf("load groups: %w", err)
		}
	}

	// Runtime constraint values (paper section 2 adaptive constraints):
	// the tuner tightens the CGI input bound as the threat level rises.
	values := gaa.NewValues()
	values.Set("max_input", "1000")
	tuner := ids.NewValueTuner(values)
	tuner.SetLevelValues(ids.Low, map[string]string{"max_input": "1000"})
	tuner.SetLevelValues(ids.Medium, map[string]string{"max_input": "300"})
	tuner.SetLevelValues(ids.High, map[string]string{"max_input": "100"})

	var reg *metrics.Registry
	if o.metrics {
		reg = metrics.NewRegistry()
	}

	apiOpts := []gaa.Option{gaa.WithPolicyCache(4096), gaa.WithValues(values)}
	if reg != nil {
		apiOpts = append(apiOpts, gaa.WithMetrics(reg),
			gaa.WithMetricsSampling(gaa.DefaultMetricsSampleShift))
	}
	if o.evalTimeout > 0 {
		apiOpts = append(apiOpts, gaa.WithEvaluatorTimeout(o.evalTimeout))
	}
	if evalSpec.Active() {
		apiOpts = append(apiOpts, gaa.WithEvaluatorWrapper(evalInj.Evaluator))
	}
	api := gaa.New(apiOpts...)
	conditions.Register(api, conditions.Deps{
		Threat: threat, Groups: grp, Counters: counters, Signatures: sigs,
	})
	actions.Register(api, actions.Deps{
		Notifier: async, Groups: grp, Audit: ring, Threat: threat,
		Blocks: blocks, Counters: counters,
	})

	// Policy sources: parsed once at startup, then served through swap
	// points so SIGHUP / POST /gaa/reload can replace them atomically
	// after the static analyzer vets the replacement.
	bundle, err := loadBundle(o)
	if err != nil {
		async.Close()
		if store != nil {
			store.Close()
		}
		return nil, err
	}
	systemSwap := gaa.NewSwappableSource(bundle.System)
	localSwap := gaa.NewSwappableSource(bundle.Local)
	reloader := gaahttp.NewReloader(gaahttp.ReloadConfig{
		Load:   func() (*gaahttp.PolicyBundle, error) { return loadBundle(o) },
		System: systemSwap,
		Local:  localSwap,
		Known:  api.Known,
	})

	guard := gaahttp.New(gaahttp.Config{
		API:    api,
		System: []gaa.PolicySource{systemSwap},
		Local:  []gaa.PolicySource{localSwap},
		Bus:    bus, Signatures: sigs,
		Anomaly:          ids.NewDetector(ids.DefaultAnomalyConfig()),
		Scorer:           scorer,
		Audit:            ring,
		SensitiveObjects: []string{"/cgi-bin/*", "/private/*"},
		Health:           reloader,
	})

	// Correlator: the host-IDS loop adapting the threat level; the
	// value tuner follows level changes.
	corrCtx, corrCancel := context.WithCancel(context.Background())
	sub := bus.Subscribe(256)
	correlator := ids.NewCorrelator(threat, ids.DefaultCorrelatorConfig())
	corrDone := make(chan struct{})
	go func() {
		defer close(corrDone)
		correlator.Run(corrCtx, sub)
	}()
	levelCh, cancelLevelSub := threat.Subscribe()
	tunerDone := make(chan struct{})
	go func() {
		defer close(tunerDone)
		tuner.Run(corrCtx, levelCh)
	}()

	// Credentials.
	htauth := httpd.NewHtpasswd()
	if o.htpasswdF != "" {
		f, err := os.Open(o.htpasswdF)
		if err != nil {
			corrCancel()
			async.Close()
			if store != nil {
				store.Close()
			}
			return nil, fmt.Errorf("open htpasswd: %w", err)
		}
		parsed, err := httpd.ParseHtpasswd(f)
		f.Close()
		if err != nil {
			corrCancel()
			async.Close()
			if store != nil {
				store.Close()
			}
			return nil, err
		}
		htauth = parsed
	} else {
		htauth.SetPassword("admin", "admin")
	}

	var (
		logW    io.Writer = os.Stdout
		logFile *os.File
	)
	if o.accessLog != "" {
		f, err := os.OpenFile(o.accessLog, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			corrCancel()
			async.Close()
			if store != nil {
				store.Close()
			}
			return nil, fmt.Errorf("open access log: %w", err)
		}
		logW, logFile = f, f
	}

	var files httpd.FileRoot
	if o.docRoot != "" {
		files = httpd.NewOSRoot(o.docRoot)
	}
	baseline := httpd.NewBaselineGuard(htaccessSource(o.localDir), nil)
	server := httpd.NewServer(httpd.Config{
		DocRoot:   demoDocRoot(),
		Files:     files,
		Scripts:   httpd.NewDemoRegistry(),
		Guards:    []httpd.Guard{guard, baseline},
		Auth:      htauth,
		Blocks:    blocks,
		AccessLog: logW,
	})

	// Dispatch without http.ServeMux: the mux canonicalizes paths
	// (e.g. collapsing "//") with a 301 *before* the access-control
	// phase, which would hide slash-flood probes from the GAA guard.
	// Apache hands the raw request line to its modules; so do we.
	status := func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, "threat level: %s\n", threat.Level())
		fmt.Fprintf(w, "BadGuys: %s\n", strings.Join(grp.Members("BadGuys"), " "))
		fmt.Fprintf(w, "blocked: %s\n", strings.Join(blocks.List(), " "))
		fmt.Fprintf(w, "notifications: %d\n", mailbox.Count())
		fmt.Fprintf(w, "bus reports: %d\n", bus.Published())
		sup := api.SupervisionStats()
		fmt.Fprintf(w, "supervision: timeouts=%d panics=%d errors=%d invalid=%d\n",
			sup.Timeouts, sup.Panics, sup.Errors, sup.Invalid)
		ns := reliable.Stats()
		fmt.Fprintf(w, "notifier: delivered=%d failures=%d retries=%d short-circuits=%d breaker=%s opens=%d\n",
			ns.Delivered, ns.Failures, ns.Retries, ns.ShortCircuits, ns.Breaker, ns.BreakerOpens)
		if scorer != nil {
			as := scorer.Stats()
			fmt.Fprintf(w, "adaptive: signal=%.3f level=%s sources=%d resources=%d samples=%d dropped=%d source-blocks=%d raises=%d lowers=%d\n",
				as.Signal, as.Level, as.Sources, as.Resources,
				as.Samples, as.Dropped, as.SourceBlocks, as.Raises, as.Lowers)
		}
		if evalInj.Spec().Active() || notifyInj.Spec().Active() {
			es, nsI := evalInj.Stats(), notifyInj.Stats()
			fmt.Fprintf(w, "fault drill: evaluators[%s] hangs=%d panics=%d errors=%d latencies=%d; notifier[%s] hangs=%d panics=%d errors=%d latencies=%d\n",
				evalInj.Spec(), es.Hangs, es.Panics, es.Errors, es.Latencies,
				notifyInj.Spec(), nsI.Hangs, nsI.Panics, nsI.Errors, nsI.Latencies)
		}
		if diskInj.Spec().Active() {
			ds := diskInj.Stats()
			fmt.Fprintf(w, "fault drill: disk[%s] short-writes=%d sync-errors=%d\n",
				diskInj.Spec(), ds.ShortWrites, ds.SyncErrors)
		}
		rls := reloader.Stats()
		fmt.Fprintf(w, "reload: generation=%d attempts=%d applied=%d rejected=%d auto-rollbacks=%d probation=%v\n",
			rls.Generation, rls.Attempts, rls.Applied, rls.Rejected, rls.AutoRollbacks, rls.Probation)
		if rls.LastError != "" {
			fmt.Fprintf(w, "reload last error: %s\n", rls.LastError)
		}
		for _, d := range rls.LastDiagnostics {
			fmt.Fprintf(w, "reload diag: %s\n", d)
		}
		if store != nil {
			ss := store.Stats()
			fmt.Fprintf(w, "state store: appends=%d append-errors=%d snapshots=%d snapshot-errors=%d syncs=%d sync-errors=%d last-seq=%d journal-errors=%d\n",
				ss.Appends, ss.AppendErrors, ss.Snapshots, ss.SnapshotErrors,
				ss.Syncs, ss.SyncErrors, ss.LastSeq, persist.JournalErrors())
			rec := store.Recovery()
			fmt.Fprintf(w, "state recovery: snapshot=%v(seq=%d quarantined=%v) replayed=%d dup-skipped=%d dropped=%dB",
				rec.SnapshotLoaded, rec.SnapshotSeq, rec.SnapshotQuarantined,
				rec.Replayed, rec.SkippedDuplicates, rec.DroppedBytes)
			if rec.DroppedReason != "" {
				fmt.Fprintf(w, " reason=%q", rec.DroppedReason)
			}
			fmt.Fprintln(w)
			rsum := persist.Restored()
			fmt.Fprintf(w, "state restored: blocks=%d expired-blocks=%d threat=%q counter-events=%d group-members=%d\n",
				rsum.Blocks, rsum.ExpiredBlocks, rsum.ThreatLevel, rsum.CounterEvents, rsum.GroupMembers)
		}
		if node != nil {
			cs := node.Stats()
			fmt.Fprintf(w, "cluster: node=%s epoch=%d seq=%d log=%d horizon=%d max-lag=%d degraded-peers=%d\n",
				cs.NodeID, cs.Epoch, cs.Seq, cs.LogLen, cs.Horizon, cs.MaxLag, cs.DegradedPeers)
			fmt.Fprintf(w, "cluster io: pushes=%d failures=%d sent=%d applied=%d dup=%d corrupt=%d apply-errors=%d self-drops=%d stale-drops=%d snapshots-sent=%d snapshots-applied=%d\n",
				cs.Pushes, cs.PushFailures, cs.RecordsSent, cs.RecordsApplied,
				cs.RecordsDuplicate, cs.CorruptFrames, cs.ApplyErrors,
				cs.SelfDrops, cs.StaleEpochDrops, cs.SnapshotsSent, cs.SnapshotsApplied)
			for _, p := range cs.Peers {
				fmt.Fprintf(w, "cluster peer: %s acked=%d lag=%d breaker=%s degraded=%v",
					p.URL, p.Acked, p.Lag, p.Breaker, p.Degraded)
				if p.LastError != "" {
					fmt.Fprintf(w, " last-error=%q", p.LastError)
				}
				fmt.Fprintln(w)
			}
			for _, or := range cs.Origins {
				fmt.Fprintf(w, "cluster origin: %s epoch=%d applied=%d\n", or.Node, or.Epoch, or.Applied)
			}
		}
		recs := ring.Records()
		if len(recs) > 10 {
			recs = recs[len(recs)-10:]
		}
		for _, r := range recs {
			fmt.Fprintf(w, "audit: %s %s %s %s\n", r.Kind, r.Object, r.Decision, r.ClientIP)
		}
	}
	reload := func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		res := reloader.Reload()
		w.Header().Set("Content-Type", "application/json")
		if !res.OK {
			// The old policy set keeps serving; the body says why the
			// candidate was rejected.
			w.WriteHeader(http.StatusUnprocessableEntity)
		}
		json.NewEncoder(w).Encode(res)
	}
	var metricsH http.Handler
	if reg != nil {
		gaahttp.RegisterComponentMetrics(reg, gaahttp.Components{
			Threat:   threat,
			Bus:      bus,
			Blocks:   blocks,
			Reliable: reliable,
			Store:    store,
			Persist:  persist,
			Reloader: reloader,
			Cluster:  node,
			Scorer:   scorer,
		})
		metricsH = gaahttp.MetricsHandler(reg)
	}
	healthzH := gaahttp.HealthzHandler(func() gaahttp.Healthz {
		return gaahttp.ComputeHealth(store, node)
	})
	var replicateH http.Handler
	if node != nil {
		replicateH = node.Handler()
	}

	var root http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/gaa/status":
			status(w, r)
			return
		case r.URL.Path == "/gaa/reload":
			reload(w, r)
			return
		case r.URL.Path == gaahttp.HealthzPath:
			healthzH.ServeHTTP(w, r)
			return
		case replicateH != nil && r.URL.Path == cluster.ReplicatePath:
			replicateH.ServeHTTP(w, r)
			return
		case metricsH != nil && r.URL.Path == "/gaa/metrics":
			metricsH.ServeHTTP(w, r)
			return
		case o.pprof && strings.HasPrefix(r.URL.Path, "/debug/pprof"):
			// Explicit pprof routes: this server deliberately avoids
			// http.ServeMux (and thus net/http/pprof's DefaultServeMux
			// registration) so raw request lines reach the guard.
			servePprof(w, r)
			return
		}
		server.ServeHTTP(w, r)
	})
	if reg != nil {
		root = gaahttp.InstrumentHandler(reg, root)
	}

	// Everything is wired; the pushers may now ship state.
	if node != nil {
		node.Start()
	}

	return &deployment{
		handler:  root,
		metrics:  reg,
		threat:   threat,
		groups:   grp,
		reloader: reloader,
		store:    store,
		cluster:  node,
		close: func() {
			if node != nil {
				node.Stop()
			}
			if scorer != nil {
				scorer.Close() // drains before the store goes away
			}
			corrCancel()
			sub.Cancel()
			cancelLevelSub()
			<-corrDone
			<-tunerDone
			async.Close()
			if store != nil {
				store.Close()
			}
			if logFile != nil {
				logFile.Close()
			}
		},
	}, nil
}

func run(args []string) error {
	o, err := parseOptions(args)
	if err != nil {
		return err
	}
	dep, err := buildDeployment(o)
	if err != nil {
		return err
	}
	defer dep.close()

	httpSrv := &http.Server{Addr: o.listen, Handler: dep.handler, ReadHeaderTimeout: 10 * time.Second}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("gaa-httpd listening on %s (threat level %s)\n", o.listen, dep.threat.Level())
	if dep.cluster != nil {
		cs := dep.cluster.Stats()
		fmt.Printf("gaa-httpd cluster node %q (epoch %d) replicating to %d peer(s)\n",
			cs.NodeID, cs.Epoch, len(cs.Peers))
	}

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
loop:
	for {
		select {
		case err := <-errCh:
			return err
		case sig := <-sigCh:
			if sig != syscall.SIGHUP {
				break loop
			}
			// SIGHUP: validated hot reload. A rejected candidate leaves
			// the running policy untouched.
			res := dep.reloader.Reload()
			if res.OK {
				fmt.Printf("gaa-httpd: policy reload applied (generation %d, %d diagnostics)\n",
					res.Generation, len(res.Diagnostics))
			} else {
				fmt.Fprintf(os.Stderr, "gaa-httpd: policy reload rejected: %s\n", res.Err)
				for _, d := range res.Diagnostics {
					fmt.Fprintf(os.Stderr, "gaa-httpd:   %s\n", d)
				}
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if o.groupsFile != "" {
		if err := dep.groups.SaveFile(o.groupsFile); err != nil {
			return fmt.Errorf("save groups: %w", err)
		}
	}
	return nil
}

// servePprof dispatches /debug/pprof requests to the pprof handlers
// without going through a ServeMux.
func servePprof(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/debug/pprof/cmdline":
		pprof.Cmdline(w, r)
	case "/debug/pprof/profile":
		pprof.Profile(w, r)
	case "/debug/pprof/symbol":
		pprof.Symbol(w, r)
	case "/debug/pprof/trace":
		pprof.Trace(w, r)
	default:
		// Index also serves the named profiles (heap, goroutine, ...).
		pprof.Index(w, r)
	}
}

// htaccessSource serves .htaccess files from the local policy tree (or
// an empty in-memory source for the demo deployment).
func htaccessSource(dir string) httpd.HtaccessSource {
	if dir == "" {
		return httpd.NewMapHtaccessSource()
	}
	return httpd.NewDirHtaccessSource(dir, ".htaccess")
}

func demoDocRoot() map[string]string {
	return map[string]string{
		"/index.html":        "<html><body><h1>GAA-protected server</h1></body></html>",
		"/docs/guide.html":   "<html><body>guide</body></html>",
		"/news/2003-05.html": "<html><body>news</body></html>",
	}
}
