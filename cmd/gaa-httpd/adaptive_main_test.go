package main

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gaaapi/internal/ids"
)

// TestDemoAdaptiveBound: the demo deployment's overflow bound lives in
// the runtime value store; once an attack raises the threat level the
// tuner tightens it, so a query acceptable in peacetime is denied.
func TestDemoAdaptiveBound(t *testing.T) {
	dep := buildDemo(t)

	medium := "/cgi-bin/search?q=" + strings.Repeat("z", 500)
	// Peacetime: 500 bytes < 1000-byte bound.
	if w := get(t, dep.handler, medium, "10.0.0.5"); w.Code != http.StatusOK {
		t.Fatalf("peacetime 500-byte query = %d, want 200", w.Code)
	}

	// Trip a signature: the demo policy escalates to medium and the
	// tuner (running on the threat subscription) tightens the bound.
	if w := get(t, dep.handler, "/cgi-bin/phf?x", "10.0.0.66"); w.Code != http.StatusForbidden {
		t.Fatalf("attack = %d, want 403", w.Code)
	}
	deadline := time.After(2 * time.Second)
	for dep.threat.Level() != ids.Medium {
		select {
		case <-deadline:
			t.Fatalf("threat level = %v, want medium", dep.threat.Level())
		case <-time.After(time.Millisecond):
		}
	}
	// The tuner runs asynchronously; wait for the request outcome to
	// flip rather than for internal state.
	deadline = time.After(2 * time.Second)
	for {
		if w := get(t, dep.handler, medium, "10.0.0.5"); w.Code == http.StatusForbidden {
			break
		}
		select {
		case <-deadline:
			t.Fatal("tightened bound never took effect")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestDocrootFlagServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	writeDoc := func(name, content string) {
		t.Helper()
		if err := writeFileHelper(dir, name, content); err != nil {
			t.Fatal(err)
		}
	}
	writeDoc("ondisk.html", "disk content")

	dep := buildDemo(t, "-docroot", dir)
	if w := get(t, dep.handler, "/ondisk.html", "10.0.0.5"); w.Code != http.StatusOK || w.Body.String() != "disk content" {
		t.Errorf("disk doc = %d %q", w.Code, w.Body.String())
	}
}

func writeFileHelper(dir, name, content string) error {
	return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
}
