package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func buildDemo(t *testing.T, args ...string) *deployment {
	t.Helper()
	o, err := parseOptions(args)
	if err != nil {
		t.Fatalf("parseOptions: %v", err)
	}
	dep, err := buildDeployment(o)
	if err != nil {
		t.Fatalf("buildDeployment: %v", err)
	}
	t.Cleanup(dep.close)
	return dep
}

func get(t *testing.T, h http.Handler, target, ip string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", target, nil)
	req.RemoteAddr = ip + ":40000"
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestDemoDeploymentServesAndProtects(t *testing.T) {
	dep := buildDemo(t)

	if w := get(t, dep.handler, "/index.html", "10.0.0.5"); w.Code != http.StatusOK {
		t.Errorf("home = %d, want 200", w.Code)
	}
	// phf is blocked, attacker blacklisted, threat escalates to medium
	// (the demo policy's rr_cond_set_threat_level).
	if w := get(t, dep.handler, "/cgi-bin/phf?Qalias=x", "10.0.0.66"); w.Code != http.StatusForbidden {
		t.Errorf("phf = %d, want 403", w.Code)
	}
	if !dep.groups.Contains("BadGuys", "10.0.0.66") {
		t.Error("attacker not blacklisted")
	}
	if dep.threat.Level().String() != "medium" {
		t.Errorf("threat level = %v, want medium after attack", dep.threat.Level())
	}
	// Blacklisted source denied on any object.
	if w := get(t, dep.handler, "/index.html", "10.0.0.66"); w.Code != http.StatusForbidden {
		t.Errorf("blacklisted client = %d, want 403", w.Code)
	}
}

func TestStatusEndpoint(t *testing.T) {
	dep := buildDemo(t)
	get(t, dep.handler, "/cgi-bin/phf?x", "10.9.9.9")
	w := get(t, dep.handler, "/gaa/status", "127.0.0.1")
	if w.Code != http.StatusOK {
		t.Fatalf("status endpoint = %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{"threat level:", "BadGuys: 10.9.9.9", "bus reports:"} {
		if !strings.Contains(body, want) {
			t.Errorf("status output missing %q:\n%s", want, body)
		}
	}
}

func TestFileBackedDeployment(t *testing.T) {
	dir := t.TempDir()
	sysPath := filepath.Join(dir, "system.eacl")
	if err := os.WriteFile(sysPath, []byte("eacl_mode narrow\nneg_access_right * *\npre_cond_accessid_GROUP local BadGuys\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	localDir := filepath.Join(dir, "site")
	if err := os.MkdirAll(localDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(localDir, ".eacl"), []byte("pos_access_right apache *\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	htpasswd := filepath.Join(dir, "users")
	if err := os.WriteFile(htpasswd, []byte("alice:{PLAIN}pw\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	groupsFile := filepath.Join(dir, "groups.txt")
	if err := os.WriteFile(groupsFile, []byte("BadGuys: 203.0.113.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	dep := buildDemo(t,
		"-system", sysPath,
		"-local-dir", localDir,
		"-htpasswd", htpasswd,
		"-groups", groupsFile,
	)

	// Preloaded blacklist member is denied.
	if w := get(t, dep.handler, "/index.html", "203.0.113.5"); w.Code != http.StatusForbidden {
		t.Errorf("preloaded blacklist member = %d, want 403", w.Code)
	}
	// Clean clients are served under the permissive local policy.
	if w := get(t, dep.handler, "/index.html", "10.0.0.5"); w.Code != http.StatusOK {
		t.Errorf("clean client = %d, want 200", w.Code)
	}
}

func TestBuildDeploymentErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-htpasswd", "/nonexistent/file"},
		{"-groups", string([]byte{0})}, // unopenable path
		{"-system", "/nonexistent/policy.eacl", "-x"},
	} {
		o, err := parseOptions(args)
		if err != nil {
			continue // flag error is also an acceptable failure mode
		}
		dep, err := buildDeployment(o)
		if err == nil {
			dep.close()
			// -system pointing at a missing file is NOT an error: the
			// FileSource treats it as "no policy yet".
			if o.htpasswdF != "" {
				t.Errorf("buildDeployment(%v) should fail", args)
			}
		}
	}
}

func TestParseOptionsDefaults(t *testing.T) {
	o, err := parseOptions(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.listen != ":8080" {
		t.Errorf("default listen = %q", o.listen)
	}
	if _, err := parseOptions([]string{"-bogus"}); err == nil {
		t.Error("want error for unknown flag")
	}
}

// TestSlashFloodReachesGuard guards against dispatch-layer path
// canonicalization (http.ServeMux 301s "//" paths before the
// access-control phase, hiding slash-flood probes from detection).
func TestSlashFloodReachesGuard(t *testing.T) {
	dep := buildDemo(t)
	target := "/" + strings.Repeat("/", 40) + "index.html"
	if w := get(t, dep.handler, target, "10.0.0.70"); w.Code != http.StatusForbidden {
		t.Errorf("slash flood = %d, want 403 (guard must see the raw path)", w.Code)
	}
	if !dep.groups.Contains("BadGuys", "10.0.0.70") {
		t.Error("slash-flood source not blacklisted")
	}
}
