package main

import (
	"net/http"
	"strings"
	"testing"

	"gaaapi/internal/metrics"
)

// TestMetricsEndpoint drives attack traffic through the demo deployment
// and lints the /gaa/metrics exposition: it must parse (every sample
// preceded by a registered TYPE line, no duplicate series), satisfy
// histogram invariants, and reflect the traffic just served.
func TestMetricsEndpoint(t *testing.T) {
	dep := buildDemo(t)
	get(t, dep.handler, "/index.html", "10.0.0.5")
	get(t, dep.handler, "/cgi-bin/phf?Qalias=x", "10.0.0.66")

	w := get(t, dep.handler, "/gaa/metrics", "127.0.0.1")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics endpoint = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	fams, err := metrics.Parse(w.Body)
	if err != nil {
		t.Fatalf("exposition lint failed: %v", err)
	}
	for name, fam := range fams {
		if !metrics.ValidName(name) {
			t.Errorf("invalid metric name %q", name)
		}
		if fam.Type == "histogram" {
			if err := metrics.CheckHistogramInvariants(fam); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
	}

	vals := dep.metrics.Values()
	if got := vals[`gaa_decisions_total{decision="yes",phase="check"}`]; got < 1 {
		t.Errorf("yes decisions = %v, want >= 1", got)
	}
	if got := vals[`gaa_decisions_total{decision="no",phase="check"}`]; got < 1 {
		t.Errorf("no decisions = %v, want >= 1 (phf denial)", got)
	}
	// The demo policy escalates to medium on the phf probe.
	if got := vals["gaa_threat_level"]; got != 2 {
		t.Errorf("threat level = %v, want 2 (medium)", got)
	}
	if got := vals[`gaa_http_requests_total{code_class="4xx"}`]; got < 1 {
		t.Errorf("4xx requests = %v, want >= 1", got)
	}
}

// TestMetricsDisabled: -metrics=false serves no registry and the path
// falls through to the web server.
func TestMetricsDisabled(t *testing.T) {
	dep := buildDemo(t, "-metrics=false")
	if dep.metrics != nil {
		t.Error("registry built with -metrics=false")
	}
	if w := get(t, dep.handler, "/gaa/metrics", "127.0.0.1"); w.Code == http.StatusOK {
		t.Errorf("metrics endpoint = %d with -metrics=false, want non-200 fallthrough", w.Code)
	}
}

// TestPprofGate: profiles are served only with -pprof.
func TestPprofGate(t *testing.T) {
	off := buildDemo(t)
	if w := get(t, off.handler, "/debug/pprof/goroutine?debug=1", "127.0.0.1"); w.Code == http.StatusOK {
		t.Errorf("pprof served without -pprof (code %d)", w.Code)
	}
	on := buildDemo(t, "-pprof")
	w := get(t, on.handler, "/debug/pprof/goroutine?debug=1", "127.0.0.1")
	if w.Code != http.StatusOK {
		t.Fatalf("pprof goroutine profile = %d, want 200", w.Code)
	}
	if !strings.Contains(w.Body.String(), "goroutine") {
		t.Error("goroutine profile body looks wrong")
	}
}
