package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"gaaapi/internal/gaahttp"
	"gaaapi/internal/workload"
)

const testSystemPolicy = `
eacl_mode narrow
neg_access_right * *
pre_cond_accessid_GROUP local BadGuys
`

const testLocalPolicy = `
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi* *///////////////////* *%c0%af*
rr_cond_update_log local on:failure/BadGuys/info:IP
neg_access_right apache *
pre_cond_expr local input_length>1000
pos_access_right apache *
`

func protectedServer(t *testing.T) *httptest.Server {
	t.Helper()
	st, err := gaahttp.NewStack(gaahttp.StackConfig{
		SystemPolicy:  testSystemPolicy,
		LocalPolicies: map[string]string{"*": testLocalPolicy},
		DocRoot:       workload.DocRoot(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(st.Server)
	t.Cleanup(func() {
		srv.Close()
		st.Close()
	})
	return srv
}

func TestAttackMixAgainstProtectedServer(t *testing.T) {
	srv := protectedServer(t)
	var out strings.Builder
	err := run([]string{"-target", srv.URL, "-mix", "attacks"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	// Every attack class should appear with status 403.
	for _, class := range []string{"phf", "test-cgi", "slash-flood", "nimda", "overflow"} {
		found := false
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(line, class) && strings.Contains(line, "403") {
				found = true
			}
		}
		if !found {
			t.Errorf("no 403 line for %s:\n%s", class, out.String())
		}
	}
}

func TestLegitMixAgainstProtectedServer(t *testing.T) {
	srv := protectedServer(t)
	var out strings.Builder
	err := run([]string{"-target", srv.URL, "-mix", "legit", "-n", "20"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "legit") || !strings.Contains(out.String(), "200") {
		t.Errorf("legit traffic not served:\n%s", out.String())
	}
	if strings.Contains(out.String(), "403") {
		t.Errorf("false positives in legit mix:\n%s", out.String())
	}
}

func TestAllMix(t *testing.T) {
	srv := protectedServer(t)
	var out strings.Builder
	if err := run([]string{"-target", srv.URL, "-mix", "all", "-n", "10"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "legit") || !strings.Contains(out.String(), "phf") {
		t.Errorf("mixed output incomplete:\n%s", out.String())
	}
}

func TestUnknownMix(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mix", "mystery"}, &out); err == nil {
		t.Error("want error for unknown mix")
	}
}

func TestUnreachableTarget(t *testing.T) {
	var out strings.Builder
	// A reserved-but-closed port: every request errors, run still
	// succeeds and reports the transport errors.
	err := run([]string{"-target", "http://127.0.0.1:1", "-mix", "attacks", "-timeout", "200ms"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "transport errors: 5") {
		t.Errorf("expected transport error count:\n%s", out.String())
	}
}

func TestConcurrentWorkers(t *testing.T) {
	srv := protectedServer(t)
	var out strings.Builder
	err := run([]string{"-target", srv.URL, "-mix", "legit", "-n", "40", "-c", "8"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "8 workers") {
		t.Errorf("missing worker count:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "40 requests in") {
		t.Errorf("missing throughput line:\n%s", out.String())
	}
	// Zero/negative concurrency clamps to 1.
	if err := run([]string{"-target", srv.URL, "-mix", "attacks", "-c", "0"}, &out); err != nil {
		t.Fatalf("run -c 0: %v", err)
	}
}
