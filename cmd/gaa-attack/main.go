// Command gaa-attack replays the experiment workloads against a
// running gaa-httpd (or any HTTP server) and summarizes the outcomes —
// the traffic-generator half of the paper's section 7 deployments.
//
// Usage:
//
//	gaa-attack -target http://localhost:8080 -mix attacks
//	gaa-attack -target http://localhost:8080 -mix legit -n 100
//	gaa-attack -target http://localhost:8080 -mix all
//
// Campaign mode runs the declarative attack campaigns of
// internal/scenario — phased narratives with turn-by-turn checkpoints —
// against an in-process stack (default), a live server (-live), or a
// recorded trace (-replay). Any checkpoint failure exits non-zero. A
// -live target must serve the campaign's own policy stack (campaigns
// declare their policies; the default gaa-httpd deployment is not it),
// and state checkpoints are skipped there — see docs/SCENARIOS.md.
//
//	gaa-attack -list
//	gaa-attack -campaign credential-stuffing
//	gaa-attack -campaign all -record testdata/scenario/records
//	gaa-attack -campaign all -replay testdata/scenario/records -json
//	gaa-attack -campaign threat-ladder -live -target http://localhost:8080
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"gaaapi/internal/scenario"
	"gaaapi/internal/scenario/replay"
	"gaaapi/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gaa-attack:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gaa-attack", flag.ContinueOnError)
	var (
		target  = fs.String("target", "http://localhost:8080", "base URL of the server under test")
		mix     = fs.String("mix", "all", "workload: legit | attacks | all")
		n       = fs.Int("n", 50, "number of legitimate requests")
		seed    = fs.Int64("seed", 2003, "workload seed")
		timeout = fs.Duration("timeout", 5*time.Second, "per-request timeout")
		conc    = fs.Int("c", 1, "concurrent client workers")

		campaign  = fs.String("campaign", "", "run a named attack campaign, or 'all' (see -list)")
		list      = fs.Bool("list", false, "list the available campaigns and exit")
		record    = fs.String("record", "", "record campaign traces into this directory")
		replayDir = fs.String("replay", "", "replay campaign traces from this directory (zero live traffic)")
		live      = fs.Bool("live", false, "drive the campaign against -target over real HTTP instead of in-process")
		jsonOut   = fs.Bool("json", false, "emit canonical JSON reports instead of the human summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		listCampaigns(out)
		return nil
	}
	if *campaign != "" {
		return runCampaigns(out, campaignOpts{
			selector:  *campaign,
			seed:      *seed,
			record:    *record,
			replayDir: *replayDir,
			live:      *live,
			target:    *target,
			jsonOut:   *jsonOut,
		})
	}

	var reqs []workload.Request
	switch *mix {
	case "legit":
		reqs = workload.Legit(*n, *seed)
	case "attacks":
		reqs = workload.AttackMix()
	case "all":
		reqs = workload.Interleave(*seed, workload.Legit(*n, *seed), workload.AttackMix())
	default:
		return fmt.Errorf("unknown mix %q", *mix)
	}

	client := &http.Client{
		Timeout: *timeout,
		// Redirects are an outcome (adaptive redirection), not a hop.
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}

	type key struct {
		attack string
		code   int
	}
	var (
		mu     sync.Mutex
		counts = make(map[key]int)
		errors int
	)
	if *conc < 1 {
		*conc = 1
	}
	work := make(chan workload.Request)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range work {
				req, err := http.NewRequest(r.Method, *target+r.Target, nil)
				if err != nil {
					mu.Lock()
					errors++
					mu.Unlock()
					continue
				}
				if r.User != "" {
					req.SetBasicAuth(r.User, r.Pass)
				}
				resp, err := client.Do(req)
				if err != nil {
					mu.Lock()
					errors++
					mu.Unlock()
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				label := r.Attack
				if label == "" {
					label = "legit"
				}
				mu.Lock()
				counts[key{label, resp.StatusCode}]++
				mu.Unlock()
			}
		}()
	}
	for _, r := range reqs {
		work <- r
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	keys := make([]key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].attack != keys[j].attack {
			return keys[i].attack < keys[j].attack
		}
		return keys[i].code < keys[j].code
	})
	fmt.Fprintf(out, "%-16s %-6s %s\n", "class", "status", "count")
	for _, k := range keys {
		fmt.Fprintf(out, "%-16s %-6d %d\n", k.attack, k.code, counts[k])
	}
	if errors > 0 {
		fmt.Fprintf(out, "transport errors: %d\n", errors)
	}
	fmt.Fprintf(out, "%d requests in %v (%.0f req/s, %d workers)\n",
		len(reqs), elapsed.Round(time.Millisecond), float64(len(reqs))/elapsed.Seconds(), *conc)
	return nil
}

type campaignOpts struct {
	selector  string
	seed      int64
	record    string
	replayDir string
	live      bool
	target    string
	jsonOut   bool
}

func listCampaigns(out io.Writer) {
	for _, c := range scenario.All() {
		fmt.Fprintf(out, "%-22s %s (%d phases)\n", c.Name, c.Title, len(c.Phases))
		for _, ph := range c.Phases {
			fmt.Fprintf(out, "    %-18s %s\n", ph.Name, ph.Comment)
		}
	}
}

// campaignJSON is the -json envelope: the effective seed is always in
// the output, machine-readable, alongside every report.
type campaignJSON struct {
	Seed    int64              `json:"seed"`
	Passed  bool               `json:"passed"`
	Reports []*scenario.Report `json:"reports"`
}

func runCampaigns(out io.Writer, opts campaignOpts) error {
	var campaigns []scenario.Campaign
	if opts.selector == "all" {
		campaigns = scenario.All()
	} else {
		c, err := scenario.Find(opts.selector)
		if err != nil {
			return err
		}
		campaigns = []scenario.Campaign{c}
	}
	if opts.replayDir != "" && (opts.live || opts.record != "") {
		return fmt.Errorf("-replay cannot be combined with -live or -record")
	}

	result := campaignJSON{Seed: opts.seed, Passed: true}
	for _, c := range campaigns {
		rep, err := runOneCampaign(c, opts)
		if err != nil {
			return fmt.Errorf("campaign %s: %w", c.Name, err)
		}
		if !rep.Passed {
			result.Passed = false
		}
		result.Reports = append(result.Reports, rep)
	}

	if opts.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(result); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(out, "seed: %d\n", opts.seed)
		for _, rep := range result.Reports {
			rep.Summarize(out)
		}
	}
	if !result.Passed {
		failures := 0
		for _, rep := range result.Reports {
			failures += len(rep.Failures)
		}
		return fmt.Errorf("%d checkpoint failure(s) (seed %d)", failures, opts.seed)
	}
	return nil
}

func runOneCampaign(c scenario.Campaign, opts campaignOpts) (*scenario.Report, error) {
	seed := opts.seed

	var tgt scenario.Target
	var rp *replay.Replayer
	var rec *replay.Recorder
	switch {
	case opts.replayDir != "":
		var err error
		rp, err = replay.Load(filepath.Join(opts.replayDir, c.Name+".trace"))
		if err != nil {
			return nil, err
		}
		// The trace's seed is authoritative: the request stream must be
		// regenerated exactly as recorded.
		seed = rp.Header().Seed
		tgt = rp
	case opts.live:
		tgt = &scenario.LiveTarget{BaseURL: opts.target}
	default:
		st, err := scenario.NewStackTarget(c.Stack)
		if err != nil {
			return nil, err
		}
		defer st.Close()
		tgt = st
	}
	if opts.record != "" {
		rec = replay.NewRecorder(tgt, c.Name, seed)
		tgt = rec
	}

	rep, err := scenario.Run(c, tgt, scenario.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	if rp != nil {
		if err := rp.Done(); err != nil {
			return nil, err
		}
	}
	if rec != nil {
		if err := rec.Save(filepath.Join(opts.record, c.Name+".trace")); err != nil {
			return nil, err
		}
	}
	return rep, nil
}
