// Command gaa-attack replays the experiment workloads against a
// running gaa-httpd (or any HTTP server) and summarizes the outcomes —
// the traffic-generator half of the paper's section 7 deployments.
//
// Usage:
//
//	gaa-attack -target http://localhost:8080 -mix attacks
//	gaa-attack -target http://localhost:8080 -mix legit -n 100
//	gaa-attack -target http://localhost:8080 -mix all
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"gaaapi/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gaa-attack:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gaa-attack", flag.ContinueOnError)
	var (
		target  = fs.String("target", "http://localhost:8080", "base URL of the server under test")
		mix     = fs.String("mix", "all", "workload: legit | attacks | all")
		n       = fs.Int("n", 50, "number of legitimate requests")
		seed    = fs.Int64("seed", 2003, "workload seed")
		timeout = fs.Duration("timeout", 5*time.Second, "per-request timeout")
		conc    = fs.Int("c", 1, "concurrent client workers")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var reqs []workload.Request
	switch *mix {
	case "legit":
		reqs = workload.Legit(*n, *seed)
	case "attacks":
		reqs = workload.AttackMix()
	case "all":
		reqs = workload.Interleave(*seed, workload.Legit(*n, *seed), workload.AttackMix())
	default:
		return fmt.Errorf("unknown mix %q", *mix)
	}

	client := &http.Client{
		Timeout: *timeout,
		// Redirects are an outcome (adaptive redirection), not a hop.
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}

	type key struct {
		attack string
		code   int
	}
	var (
		mu     sync.Mutex
		counts = make(map[key]int)
		errors int
	)
	if *conc < 1 {
		*conc = 1
	}
	work := make(chan workload.Request)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range work {
				req, err := http.NewRequest(r.Method, *target+r.Target, nil)
				if err != nil {
					mu.Lock()
					errors++
					mu.Unlock()
					continue
				}
				if r.User != "" {
					req.SetBasicAuth(r.User, r.Pass)
				}
				resp, err := client.Do(req)
				if err != nil {
					mu.Lock()
					errors++
					mu.Unlock()
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				label := r.Attack
				if label == "" {
					label = "legit"
				}
				mu.Lock()
				counts[key{label, resp.StatusCode}]++
				mu.Unlock()
			}
		}()
	}
	for _, r := range reqs {
		work <- r
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	keys := make([]key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].attack != keys[j].attack {
			return keys[i].attack < keys[j].attack
		}
		return keys[i].code < keys[j].code
	})
	fmt.Fprintf(out, "%-16s %-6s %s\n", "class", "status", "count")
	for _, k := range keys {
		fmt.Fprintf(out, "%-16s %-6d %d\n", k.attack, k.code, counts[k])
	}
	if errors > 0 {
		fmt.Fprintf(out, "transport errors: %d\n", errors)
	}
	fmt.Fprintf(out, "%d requests in %v (%.0f req/s, %d workers)\n",
		len(reqs), elapsed.Round(time.Millisecond), float64(len(reqs))/elapsed.Seconds(), *conc)
	return nil
}
