package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gaaapi/internal/gaahttp"
	"gaaapi/internal/scenario"
)

// TestCampaignList: the catalog prints every campaign with its phases.
func TestCampaignList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"credential-stuffing", "flash-crowd", "low-and-slow",
		"recovery-after-block", "scraping-burst", "threat-ladder",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("missing campaign %s:\n%s", name, out.String())
		}
	}
}

// TestCampaignInProcess: a passing campaign exits zero, prints the
// effective seed and the PASS verdict.
func TestCampaignInProcess(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-campaign", "recovery-after-block", "-seed", "41"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "seed: 41") {
		t.Errorf("effective seed not printed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "PASS:") {
		t.Errorf("missing verdict:\n%s", out.String())
	}
}

// TestCampaignJSON: -json emits the machine envelope with the seed and
// full reports.
func TestCampaignJSON(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-campaign", "flash-crowd", "-json", "-seed", "9"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var env struct {
		Seed    int64 `json:"seed"`
		Passed  bool  `json:"passed"`
		Reports []struct {
			Campaign string `json:"campaign"`
			Seed     int64  `json:"seed"`
		} `json:"reports"`
	}
	if err := json.Unmarshal([]byte(out.String()), &env); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if env.Seed != 9 || !env.Passed || len(env.Reports) != 1 || env.Reports[0].Campaign != "flash-crowd" {
		t.Errorf("envelope = %+v", env)
	}
}

// TestCampaignRecordReplay: record writes one trace per campaign, and
// replay runs from them (the -seed flag is overridden by the trace's
// recorded seed).
func TestCampaignRecordReplay(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-campaign", "scraping-burst", "-seed", "5", "-record", dir}, &out); err != nil {
		t.Fatalf("record: %v\n%s", err, out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "scraping-burst.trace")); err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	out.Reset()
	// Different -seed on replay: the trace seed (5) must win.
	if err := run([]string{"-campaign", "scraping-burst", "-seed", "99", "-replay", dir}, &out); err != nil {
		t.Fatalf("replay: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "seed=5") {
		t.Errorf("trace seed not authoritative:\n%s", out.String())
	}
}

// TestCampaignCheckpointFailureExitsNonZero: a failing checkpoint is a
// run error (main turns it into a non-zero exit), and the failure
// names the check.
func TestCampaignCheckpointFailureExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-campaign", "flash-crowd", "-seed", "5", "-record", dir}, &out); err != nil {
		t.Fatalf("record: %v", err)
	}
	// Replaying a different campaign's narrative against this trace
	// diverges — a hard error, not a checkpoint miss.
	out.Reset()
	err := run([]string{"-campaign", "credential-stuffing", "-replay", dir}, &out)
	if err == nil {
		t.Fatal("want error replaying the wrong campaign's trace")
	}
}

// TestCampaignBadFlagCombos: conflicting modes are rejected.
func TestCampaignBadFlagCombos(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-campaign", "flash-crowd", "-replay", "x", "-live"}, &out); err == nil {
		t.Error("want error for -replay with -live")
	}
	if err := run([]string{"-campaign", "nope"}, &out); err == nil || !strings.Contains(err.Error(), "-list") {
		t.Errorf("unknown campaign err = %v", err)
	}
}

// TestCampaignLive: campaigns degrade gracefully against a live URL —
// traffic assertions run, unobservable state checks are skipped, and
// the run still passes. Over a real socket every request arrives from
// 127.0.0.1, so only campaigns whose adaptive state is global (not
// source-keyed) can hold their narrative live; threat-ladder is one.
func TestCampaignLive(t *testing.T) {
	c, err := scenario.Find("threat-ladder")
	if err != nil {
		t.Fatal(err)
	}
	st, err := gaahttp.NewStack(gaahttp.StackConfig{
		SystemPolicy:  c.Stack.SystemPolicy,
		LocalPolicies: c.Stack.LocalPolicies,
		DocRoot:       c.Stack.DocRoot,
		Users:         c.Stack.Users,
		RuntimeValues: c.Stack.RuntimeValues,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(st.Server)
	defer func() {
		srv.Close()
		st.Close()
	}()
	var out strings.Builder
	if err := run([]string{"-campaign", "threat-ladder", "-live", "-target", srv.URL}, &out); err != nil {
		t.Fatalf("live campaign: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "skipped") {
		t.Errorf("state checks should be skipped against a live target:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "PASS:") {
		t.Errorf("live traffic narrative failed:\n%s", out.String())
	}
}
