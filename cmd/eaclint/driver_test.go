package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// End-to-end coverage of the analyzer driver: exit codes, -json schema
// stability, SARIF 2.1.0 shape, rule/severity filtering, composition.

const conflictPolicy = `
pos_access_right apache GET /cgi-bin/*
neg_access_right apache GET /cgi-bin/phf
pre_cond_regex gnu *phf*
`

const badValuePolicy = `
neg_access_right apache *
pre_cond_regex gnu re:[unclosed
`

func TestExitCodes(t *testing.T) {
	clean := writePolicy(t, "pos_access_right apache *\n")
	var out strings.Builder
	if code, err := run([]string{clean}, &out); err != nil || code != 0 {
		t.Errorf("clean policy: code=%d err=%v\n%s", code, err, out.String())
	}

	// Warnings alone keep exit 0 (vet-style: only errors gate).
	warn := writePolicy(t, conflictPolicy)
	out.Reset()
	if code, err := run([]string{warn}, &out); err != nil || code != 0 {
		t.Errorf("warning-only policy: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "W003") {
		t.Errorf("missing W003 finding:\n%s", out.String())
	}

	// Error findings exit 1.
	bad := writePolicy(t, badValuePolicy)
	out.Reset()
	if code, err := run([]string{bad}, &out); err != nil || code != 1 {
		t.Errorf("error policy: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "E001") {
		t.Errorf("missing E001 finding:\n%s", out.String())
	}

	// Usage errors return err (main maps that to exit 2).
	out.Reset()
	if _, err := run([]string{"-rules", "E999", clean}, &out); err == nil {
		t.Error("want usage error for unknown rule")
	}
	out.Reset()
	if _, err := run([]string{"-severity", "fatal", clean}, &out); err == nil {
		t.Error("want usage error for unknown severity")
	}
}

func TestJSONOutput(t *testing.T) {
	bad := writePolicy(t, badValuePolicy)
	var out strings.Builder
	code, err := run([]string{"-json", bad}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	var doc struct {
		Version  int `json:"version"`
		Findings []struct {
			Code     string `json:"code"`
			Rule     string `json:"rule"`
			Severity string `json:"severity"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if doc.Version != 1 {
		t.Errorf("report version = %d, want 1", doc.Version)
	}
	found := false
	for _, f := range doc.Findings {
		if f.Code == "E001" && f.Severity == "error" && f.File == bad && f.Line > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no well-formed E001 finding in %s", out.String())
	}

	// A clean policy still emits a parseable document with an empty array.
	clean := writePolicy(t, "pos_access_right apache *\n")
	out.Reset()
	if code, err := run([]string{"-json", clean}, &out); err != nil || code != 0 {
		t.Fatalf("clean -json: code=%d err=%v", code, err)
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("clean -json does not parse: %v", err)
	}
	if len(doc.Findings) != 0 {
		t.Errorf("clean policy findings: %v", doc.Findings)
	}
}

func TestSARIFOutput(t *testing.T) {
	bad := writePolicy(t, badValuePolicy)
	var out strings.Builder
	code, err := run([]string{"-sarif", bad}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string           `json:"name"`
					Rules []map[string]any `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
				Level  string `json:"level"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("-sarif output does not parse: %v", err)
	}
	if doc.Version != "2.1.0" || !strings.Contains(doc.Schema, "sarif-2.1.0") {
		t.Errorf("version=%q schema=%q", doc.Version, doc.Schema)
	}
	if len(doc.Runs) != 1 || doc.Runs[0].Tool.Driver.Name != "eaclint" {
		t.Fatalf("runs = %+v", doc.Runs)
	}
	if len(doc.Runs[0].Tool.Driver.Rules) == 0 {
		t.Error("SARIF driver carries no rule catalog")
	}
	hasE001 := false
	for _, r := range doc.Runs[0].Results {
		if r.RuleID == "E001" && r.Level == "error" {
			hasE001 = true
		}
	}
	if !hasE001 {
		t.Errorf("no E001 result in SARIF output:\n%s", out.String())
	}
}

func TestRulesFlag(t *testing.T) {
	path := writePolicy(t, conflictPolicy+badValuePolicy)
	var out strings.Builder
	code, err := run([]string{"-rules", "W003", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit = %d, want 0 (E001 filtered out)", code)
	}
	if !strings.Contains(out.String(), "W003") || strings.Contains(out.String(), "E001") {
		t.Errorf("rule filter not applied:\n%s", out.String())
	}

	out.Reset()
	if _, err := run([]string{"-rules", "-unreachable-entry", path}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "W003") || !strings.Contains(out.String(), "E001") {
		t.Errorf("negative rule filter not applied:\n%s", out.String())
	}
}

func TestSeverityFlag(t *testing.T) {
	path := writePolicy(t, conflictPolicy)
	var out strings.Builder
	code, err := run([]string{"-severity", "error", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit = %d, want 0", code)
	}
	if strings.Contains(out.String(), "W003") {
		t.Errorf("warning leaked through -severity error:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ok (") {
		t.Errorf("clean-at-error-severity file not reported ok:\n%s", out.String())
	}
}

func TestCompositionFlags(t *testing.T) {
	dir := t.TempDir()
	sys := filepath.Join(dir, "system.eacl")
	loc := filepath.Join(dir, "local.eacl")
	if err := os.WriteFile(sys, []byte("eacl_mode stop\nneg_access_right * *\npre_cond_system_threat_level local =high\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(loc, []byte("pos_access_right apache *\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := run([]string{"-system", sys, "-local", loc}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit = %d, want 0 (W020 is a warning)", code)
	}
	if !strings.Contains(out.String(), "W020") {
		t.Errorf("composition finding missing:\n%s", out.String())
	}

	// Narrow dead grant is an error: exit 1.
	if err := os.WriteFile(sys, []byte("eacl_mode narrow\nneg_access_right * *\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	code, err = run([]string{"-system", sys, "-local", loc}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(out.String(), "E020") {
		t.Errorf("code=%d output:\n%s", code, out.String())
	}
}
