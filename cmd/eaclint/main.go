// Command eaclint is the policy tool the paper lists as future work in
// section 2: "an automated tool to ensure policy correctness and
// consistency and to ease the policy specification burden on the
// policy officer". It parses EACL files, reports static findings
// (unreachable entries, duplicate entries, illegal blocks, unknown
// condition types), pretty-prints the canonical form, and explains
// how a hypothetical request would evaluate.
//
// Usage:
//
//	eaclint policy.eacl                 # validate against the built-in registry
//	eaclint -config gaa.conf policy.eacl  # validate against a GAA configuration file
//	eaclint -fmt policy.eacl            # print canonical form
//	eaclint -explain "GET /cgi-bin/phf" -param request_uri="GET /cgi-bin/phf" policy.eacl
//	eaclint -hash /etc/passwd           # sha256 for post_cond_file_sha256
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gaaapi/internal/conditions"
	gaaconfig "gaaapi/internal/config"
	"gaaapi/internal/eacl"
	"gaaapi/internal/gaa"
	"gaaapi/internal/groups"
	"gaaapi/internal/ids"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eaclint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

type paramFlags []string

func (p *paramFlags) String() string { return strings.Join(*p, ",") }
func (p *paramFlags) Set(s string) error {
	*p = append(*p, s)
	return nil
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("eaclint", flag.ContinueOnError)
	var (
		format  = fs.Bool("fmt", false, "print the canonical form instead of validating")
		explain = fs.String("explain", "", "evaluate the right \"<METHOD> <path>\" and print the trace")
		hash    = fs.String("hash", "", "print the sha256 of a file (for post_cond_file_sha256)")
		cfgPath = fs.String("config", "", "GAA configuration file declaring the registered routines (default: all built-ins)")
		params  paramFlags
	)
	fs.Var(&params, "param", "request parameter type=value for -explain (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	if *hash != "" {
		digest, err := conditions.HashFile(*hash)
		if err != nil {
			return 2, err
		}
		fmt.Fprintf(out, "%s  %s\n", digest, *hash)
		return 0, nil
	}

	if fs.NArg() == 0 {
		return 2, fmt.Errorf("no policy files given")
	}

	// The registration vocabulary the findings are checked against:
	// every built-in by default, or exactly what a GAA configuration
	// file declares (paper section 6 step 1).
	// Tracing on: --explain renders the full evaluation trace.
	api := gaa.New(gaa.WithTracing())
	if *cfgPath != "" {
		cfg, err := gaaconfig.ParseFile(*cfgPath)
		if err != nil {
			return 2, err
		}
		deps := gaaconfig.Deps{}
		deps.Conditions.Threat = ids.NewManager(ids.Low)
		deps.Conditions.Groups = groups.NewStore()
		if err := cfg.Apply(api, deps); err != nil {
			return 2, err
		}
	} else {
		conditions.Register(api, conditions.Deps{
			Threat: ids.NewManager(ids.Low),
			Groups: groups.NewStore(),
		})
		registerActionStubs(api)
	}

	exit := 0
	for _, path := range fs.Args() {
		e, err := eacl.ParseFile(path)
		if err != nil {
			fmt.Fprintf(out, "%v\n", err)
			exit = 1
			continue
		}
		if *format {
			fmt.Fprint(out, e.String())
			continue
		}
		findings := eacl.Validate(e, eacl.ValidateOptions{KnownCondition: api.Known})
		for _, f := range findings {
			fmt.Fprintf(out, "%s: %s\n", path, f)
			if f.Severity == eacl.Error {
				exit = 1
			}
		}
		if len(findings) == 0 && *explain == "" {
			fmt.Fprintf(out, "%s: ok (%d entries)\n", path, len(e.Entries))
		}
		if *explain != "" {
			if err := explainPolicy(out, api, e, *explain, params); err != nil {
				return 2, err
			}
		}
	}
	return exit, nil
}

func explainPolicy(out io.Writer, api *gaa.API, e *eacl.EACL, right string, params paramFlags) error {
	req := gaa.NewRequest("apache", right)
	for _, p := range params {
		typ, val, ok := strings.Cut(p, "=")
		if !ok {
			return fmt.Errorf("bad -param %q, want type=value", p)
		}
		req.Params = req.Params.With(gaa.Param{Type: typ, Authority: gaa.AuthorityAny, Value: val})
	}
	policy := gaa.NewPolicy("explain", nil, []*eacl.EACL{e})
	ans, err := api.CheckAuthorization(context.Background(), policy, req)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "decision: %s (applicable=%v)\n", ans.Decision, ans.Applicable)
	if ans.Challenge != "" {
		fmt.Fprintf(out, "challenge: %s\n", ans.Challenge)
	}
	for _, ev := range ans.Trace {
		fmt.Fprintf(out, "  %s\n", ev)
	}
	return nil
}

// registerActionStubs marks the action vocabulary as known without
// wiring real side effects — lint-time evaluation must stay pure.
func registerActionStubs(api *gaa.API) {
	for _, name := range []string{"notify", "update_log", "audit", "set_threat_level", "block_ip", "count"} {
		api.RegisterFunc(name, gaa.AuthorityAny,
			func(context.Context, eacl.Condition, *gaa.Request) gaa.Outcome {
				return gaa.MetOutcome(gaa.ClassAction, "stubbed for lint")
			})
	}
}
