// Command eaclint is the policy tool the paper lists as future work in
// section 2: "an automated tool to ensure policy correctness and
// consistency and to ease the policy specification burden on the
// policy officer". It drives the static-analysis engine in
// internal/eacl/analysis: value-level semantic validation, glob-aware
// flow analysis (unreachable, subsumed and conflicting entries), and
// cross-file composition analysis, with plain-text, JSON and SARIF
// 2.1.0 output. It also pretty-prints the canonical form and explains
// how a hypothetical request would evaluate.
//
// Usage:
//
//	eaclint policy.eacl                   # analyze against the built-in registry
//	eaclint -config gaa.conf policy.eacl  # analyze against a GAA configuration file
//	eaclint -system sys.eacl -local loc.eacl  # composition analysis across levels
//	eaclint -json policy.eacl             # machine-readable findings
//	eaclint -sarif policy.eacl            # SARIF 2.1.0 for code scanning
//	eaclint -rules W003,-W007 policy.eacl # select / disable rules by code or name
//	eaclint -severity error policy.eacl   # drop warnings
//	eaclint -fmt policy.eacl              # print canonical form
//	eaclint -explain "GET /cgi-bin/phf" -param request_uri="GET /cgi-bin/phf" policy.eacl
//	eaclint -hash /etc/passwd             # sha256 for post_cond_file_sha256
//
// The whole-policy reasoning engine (internal/eacl/reason) answers
// global reachability questions with concrete witness requests, each
// replayed through the interpreted and compiled evaluators:
//
//	eaclint -query 'who-can(apache, GET /cgi-bin/*, high)' policy.eacl
//	eaclint -prove no-anonymous-yes -system sys.eacl -local loc.eacl
//	eaclint -prove no-dead-entries -value max_input=1000 policy.eacl
//
// With -system/-local the queries run over the composed policy set;
// otherwise each positional file is analyzed as a stand-alone local
// policy. Query and proof results are always JSON.
//
// Exit codes are vet-style: 0 when no error-severity findings were
// reported and every requested proof was discharged, 1 when at least
// one file failed to parse, an error finding fired, or a proof came
// back refuted or unknown, 2 on usage errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gaaapi/internal/conditions"
	gaaconfig "gaaapi/internal/config"
	"gaaapi/internal/eacl"
	"gaaapi/internal/eacl/analysis"
	"gaaapi/internal/eacl/reason"
	"gaaapi/internal/gaa"
	"gaaapi/internal/groups"
	"gaaapi/internal/ids"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eaclint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (p *multiFlag) String() string { return strings.Join(*p, ",") }
func (p *multiFlag) Set(s string) error {
	*p = append(*p, s)
	return nil
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("eaclint", flag.ContinueOnError)
	var (
		format   = fs.Bool("fmt", false, "print the canonical form instead of analyzing")
		jsonOut  = fs.Bool("json", false, "emit findings as a JSON report")
		sarifOut = fs.Bool("sarif", false, "emit findings as SARIF 2.1.0 (for code scanning upload)")
		explain  = fs.String("explain", "", "evaluate the right \"<METHOD> <path>\" and print the trace")
		hash     = fs.String("hash", "", "print the sha256 of a file (for post_cond_file_sha256)")
		cfgPath  = fs.String("config", "", "GAA configuration file declaring the registered routines (default: all built-ins)")
		rules    = fs.String("rules", "", "comma-separated rule codes or names to run; prefix with '-' to disable (e.g. W003,-subsumed-entry)")
		severity = fs.String("severity", "", "minimum severity to report: warning (default) or error")
		params   multiFlag
		systems  multiFlag
		locals   multiFlag
		queries  multiFlag
		proves   multiFlag
		values   multiFlag
	)
	fs.Var(&params, "param", "request parameter type=value for -explain (repeatable)")
	fs.Var(&systems, "system", "system-level EACL file for composition analysis (repeatable)")
	fs.Var(&locals, "local", "local-level EACL file for composition analysis (repeatable)")
	fs.Var(&queries, "query", "reasoning query, e.g. 'who-can(apache, GET /*, high)' (repeatable)")
	fs.Var(&proves, "prove", "property to prove: no-anonymous-yes or no-dead-entries (repeatable)")
	fs.Var(&values, "value", "runtime value name=value resolving '@name' references during reasoning (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	if *hash != "" {
		digest, err := conditions.HashFile(*hash)
		if err != nil {
			return 2, err
		}
		fmt.Fprintf(out, "%s  %s\n", digest, *hash)
		return 0, nil
	}

	var opts []analysis.Option
	if *rules != "" {
		opt, err := analysis.WithRuleFilter(*rules)
		if err != nil {
			return 2, err
		}
		opts = append(opts, opt)
	}
	if *severity != "" {
		sev, err := analysis.ParseSeverity(*severity)
		if err != nil {
			return 2, err
		}
		opts = append(opts, analysis.WithMinSeverity(sev))
	}
	analyzer := analysis.New(opts...)

	if fs.NArg() == 0 && len(systems) == 0 && len(locals) == 0 {
		return 2, fmt.Errorf("no policy files given")
	}

	// The registration vocabulary the findings are checked against:
	// every built-in by default, or exactly what a GAA configuration
	// file declares (paper section 6 step 1).
	// Tracing on: --explain renders the full evaluation trace.
	api := gaa.New(gaa.WithTracing())
	if *cfgPath != "" {
		cfg, err := gaaconfig.ParseFile(*cfgPath)
		if err != nil {
			return 2, err
		}
		deps := gaaconfig.Deps{}
		deps.Conditions.Threat = ids.NewManager(ids.Low)
		deps.Conditions.Groups = groups.NewStore()
		if err := cfg.Apply(api, deps); err != nil {
			return 2, err
		}
	} else {
		conditions.Register(api, conditions.Deps{
			Threat: ids.NewManager(ids.Low),
			Groups: groups.NewStore(),
		})
		registerActionStubs(api)
	}

	// Parse every file up front: positional files are analyzed in
	// isolation; -system/-local files are analyzed in isolation AND as a
	// composed policy set.
	exit := 0
	type parsed struct {
		path string
		e    *eacl.EACL
	}
	var files, positional []parsed
	var sysEACLs, locEACLs []*eacl.EACL
	load := func(path string) *eacl.EACL {
		e, err := eacl.ParseFile(path)
		if err != nil {
			fmt.Fprintf(out, "%v\n", err)
			exit = 1
			return nil
		}
		files = append(files, parsed{path, e})
		return e
	}
	for _, path := range fs.Args() {
		if e := load(path); e != nil {
			positional = append(positional, parsed{path, e})
		}
	}
	for _, path := range systems {
		if e := load(path); e != nil {
			sysEACLs = append(sysEACLs, e)
		}
	}
	for _, path := range locals {
		if e := load(path); e != nil {
			locEACLs = append(locEACLs, e)
		}
	}

	if *format {
		for _, f := range files {
			fmt.Fprint(out, f.e.String())
		}
		return exit, nil
	}

	if len(queries) > 0 || len(proves) > 0 {
		if exit != 0 {
			return exit, nil // parse failures already reported
		}
		// -system/-local files form one composed target; each positional
		// file is reasoned about as a stand-alone local policy.
		var targets []reasonTarget
		if len(sysEACLs) > 0 || len(locEACLs) > 0 {
			targets = append(targets, reasonTarget{name: "composition", system: sysEACLs, local: locEACLs})
		}
		for _, f := range positional {
			targets = append(targets, reasonTarget{name: f.path, local: []*eacl.EACL{f.e}})
		}
		return runReason(out, queries, proves, values, targets)
	}

	var diags []analysis.Diagnostic
	perFile := make(map[string]int, len(files))
	for _, f := range files {
		ds := analyzer.AnalyzeFile(&analysis.File{EACL: f.e, Known: api.Known})
		perFile[f.path] = len(ds)
		diags = append(diags, ds...)
	}
	if len(sysEACLs) > 0 || len(locEACLs) > 0 {
		diags = append(diags, analyzer.AnalyzeComposition(analysis.NewComposition(sysEACLs, locEACLs))...)
	}
	for _, d := range diags {
		if d.Severity == analysis.SeverityError {
			exit = 1
		}
	}

	switch {
	case *jsonOut:
		doc, err := analysis.JSONReport(diags)
		if err != nil {
			return 2, err
		}
		fmt.Fprintf(out, "%s\n", doc)
	case *sarifOut:
		doc, err := analysis.SARIFReport(diags)
		if err != nil {
			return 2, err
		}
		fmt.Fprintf(out, "%s\n", doc)
	default:
		for _, d := range diags {
			fmt.Fprintf(out, "%s\n", d)
		}
		for _, f := range files {
			if perFile[f.path] == 0 && *explain == "" {
				fmt.Fprintf(out, "%s: ok (%d entries)\n", f.path, len(f.e.Entries))
			}
		}
		if *explain != "" {
			for _, f := range files {
				if err := explainPolicy(out, api, f.e, *explain, params); err != nil {
					return 2, err
				}
			}
		}
	}
	return exit, nil
}

func explainPolicy(out io.Writer, api *gaa.API, e *eacl.EACL, right string, params multiFlag) error {
	req := gaa.NewRequest("apache", right)
	for _, p := range params {
		typ, val, ok := strings.Cut(p, "=")
		if !ok {
			return fmt.Errorf("bad -param %q, want type=value", p)
		}
		req.Params = req.Params.With(gaa.Param{Type: typ, Authority: gaa.AuthorityAny, Value: val})
	}
	policy := gaa.NewPolicy("explain", nil, []*eacl.EACL{e})
	ans, err := api.CheckAuthorization(context.Background(), policy, req)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "decision: %s (applicable=%v)\n", ans.Decision, ans.Applicable)
	if ans.Challenge != "" {
		fmt.Fprintf(out, "challenge: %s\n", ans.Challenge)
	}
	for _, ev := range ans.Trace {
		fmt.Fprintf(out, "  %s\n", ev)
	}
	return nil
}

// registerActionStubs marks the action vocabulary as known without
// wiring real side effects — lint-time evaluation must stay pure. The
// list is shared with the reasoning engine so -query/-prove and plain
// lint agree on what "registered" means.
func registerActionStubs(api *gaa.API) {
	for _, name := range reason.ActionStubNames {
		api.RegisterFunc(name, gaa.AuthorityAny,
			func(context.Context, eacl.Condition, *gaa.Request) gaa.Outcome {
				return gaa.MetOutcome(gaa.ClassAction, "stubbed for lint")
			})
	}
}

// reasonTarget is one policy set the reasoning engine runs over.
type reasonTarget struct {
	name   string
	system []*eacl.EACL
	local  []*eacl.EACL
}

// reasonReport is the JSON document emitted per target.
type reasonReport struct {
	Target    string                `json:"target"`
	Worlds    int                   `json:"worlds"`
	Truncated bool                  `json:"truncated,omitempty"`
	Queries   []*reason.QueryResult `json:"queries,omitempty"`
	Proofs    []*reason.ProofResult `json:"proofs,omitempty"`
}

// runReason drives -query/-prove: build one engine per target, answer
// every query, discharge every proof. Exit 1 when a proof is not
// proved; an abstract/concrete replay disagreement is an engine bug and
// exits 2.
func runReason(out io.Writer, queries, proves, values multiFlag, targets []reasonTarget) (int, error) {
	var qs []*reason.Query
	for _, s := range queries {
		q, err := reason.ParseQuery(s)
		if err != nil {
			return 2, err
		}
		qs = append(qs, q)
	}
	opts := reason.Options{Values: map[string]string{}}
	for _, v := range values {
		name, val, ok := strings.Cut(v, "=")
		if !ok {
			return 2, fmt.Errorf("bad -value %q, want name=value", v)
		}
		opts.Values[name] = val
	}
	for _, q := range qs {
		opts.ExtraRights = append(opts.ExtraRights, q.ExtraRights()...)
		if q.NeedsSystemOnly() {
			opts.SystemOnly = true
		}
	}

	exit := 0
	var reports []reasonReport
	for _, tgt := range targets {
		eng, err := reason.New(tgt.system, tgt.local, opts)
		if err != nil {
			return 2, err
		}
		rep := reasonReport{Target: tgt.name, Worlds: eng.Worlds(), Truncated: eng.Truncated()}
		for _, q := range qs {
			res, err := eng.Answer(q)
			if err != nil {
				return 2, err
			}
			rep.Queries = append(rep.Queries, res)
		}
		for _, p := range proves {
			res, err := eng.Prove(p)
			if err != nil {
				return 2, err
			}
			if res.Result != reason.Proved {
				exit = 1
			}
			rep.Proofs = append(rep.Proofs, res)
		}
		reports = append(reports, rep)
	}
	doc, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return 2, err
	}
	fmt.Fprintf(out, "%s\n", doc)
	return exit, nil
}
