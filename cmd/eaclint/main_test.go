package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writePolicy(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "policy.eacl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidateCleanPolicy(t *testing.T) {
	path := writePolicy(t, `
neg_access_right apache *
pre_cond_regex gnu *phf*
rr_cond_notify local on:failure/sysadmin/info:x
pos_access_right apache *
`)
	var out strings.Builder
	code, err := run([]string{path}, &out)
	if err != nil || code != 0 {
		t.Fatalf("run = %d, %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "ok (2 entries)") {
		t.Errorf("output = %q", out.String())
	}
}

func TestValidateFindings(t *testing.T) {
	path := writePolicy(t, `
pos_access_right apache *
neg_access_right apache *
pre_cond_phase_of_moon local full
mid_cond_quota local cpu_ms<=5
`)
	var out strings.Builder
	code, err := run([]string{path}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (error finding present)", code)
	}
	for _, want := range []string{"unreachable", "no evaluator registered", "not allowed on neg_access_right"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestParseErrorExitsNonzero(t *testing.T) {
	path := writePolicy(t, "pre_cond_orphan local x\n")
	var out strings.Builder
	code, err := run([]string{path}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "before any access right") {
		t.Errorf("output = %q", out.String())
	}
}

func TestFormatMode(t *testing.T) {
	path := writePolicy(t, "eacl mode 1\npos_access_right   apache   *   # comment\n")
	var out strings.Builder
	code, err := run([]string{"-fmt", path}, &out)
	if err != nil || code != 0 {
		t.Fatalf("run -fmt = %d, %v", code, err)
	}
	want := "eacl_mode narrow\npos_access_right apache *\n"
	if out.String() != want {
		t.Errorf("canonical form = %q, want %q", out.String(), want)
	}
}

func TestExplainMode(t *testing.T) {
	path := writePolicy(t, `
neg_access_right apache *
pre_cond_regex gnu *phf*
pos_access_right apache *
`)
	var out strings.Builder
	code, err := run([]string{
		"-explain", "GET /cgi-bin/phf",
		"-param", "request_uri=GET /cgi-bin/phf",
		path,
	}, &out)
	if err != nil || code != 0 {
		t.Fatalf("run -explain = %d, %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "decision: no") {
		t.Errorf("explain output = %q", out.String())
	}
	if !strings.Contains(out.String(), "entry fired: deny") {
		t.Errorf("explain trace missing deny event:\n%s", out.String())
	}
}

func TestExplainBadParam(t *testing.T) {
	path := writePolicy(t, "pos_access_right apache *\n")
	var out strings.Builder
	if _, err := run([]string{"-explain", "GET /", "-param", "nocolon", path}, &out); err == nil {
		t.Error("want error for malformed -param")
	}
}

func TestHashMode(t *testing.T) {
	file := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(file, []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := run([]string{"-hash", file}, &out)
	if err != nil || code != 0 {
		t.Fatalf("run -hash = %d, %v", code, err)
	}
	if !strings.HasPrefix(out.String(), "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad") {
		t.Errorf("hash output = %q", out.String())
	}
}

func TestNoArgs(t *testing.T) {
	var out strings.Builder
	if _, err := run(nil, &out); err == nil {
		t.Error("want error when no policy files given")
	}
}

func TestConfigScopedValidation(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "gaa.conf")
	if err := os.WriteFile(cfgPath, []byte("condition regex gnu regex\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	policy := writePolicy(t, `
neg_access_right apache *
pre_cond_regex gnu *phf*
pre_cond_system_threat_level local =high
`)
	var out strings.Builder
	code, err := run([]string{"-config", cfgPath, policy}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Errorf("exit = %d (warnings are not errors)", code)
	}
	// regex IS registered by the config; the threat condition is NOT.
	if strings.Contains(out.String(), "pre_cond_regex (authority") {
		t.Errorf("regex flagged despite config registration:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "system_threat_level") {
		t.Errorf("unregistered condition not flagged:\n%s", out.String())
	}
}

func TestConfigFlagErrors(t *testing.T) {
	policy := writePolicy(t, "pos_access_right apache *\n")
	var out strings.Builder
	if _, err := run([]string{"-config", filepath.Join(t.TempDir(), "absent.conf"), policy}, &out); err == nil {
		t.Error("want error for missing config")
	}
	bad := filepath.Join(t.TempDir(), "bad.conf")
	if err := os.WriteFile(bad, []byte("condition x y unknown_routine\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run([]string{"-config", bad, policy}, &out); err == nil {
		t.Error("want error for unknown routine in config")
	}
}
