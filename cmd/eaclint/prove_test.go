package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// End-to-end coverage of the -query/-prove/-value reasoning surface:
// exit codes, JSON report shape, and the shipped paper compositions as
// golden targets (7.1 proves clean; 7.2 with a runtime max_input value
// is refuted by an anonymous witness, matching the paper's scenario).

// reasonRun invokes the CLI and decodes the JSON report array.
func reasonRun(t *testing.T, args ...string) (int, []reasonReport, string) {
	t.Helper()
	var out strings.Builder
	code, err := run(args, &out)
	if err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	var reports []reasonReport
	if err := json.Unmarshal([]byte(out.String()), &reports); err != nil {
		t.Fatalf("bad JSON report: %v\n%s", err, out.String())
	}
	return code, reports, out.String()
}

func TestProveShipped71(t *testing.T) {
	code, reports, raw := reasonRun(t,
		"-prove", "no-anonymous-yes", "-prove", "no-dead-entries",
		"-system", "../../policies/paper/system-7.1.eacl",
		"-local", "../../policies/paper/local-7.1.eacl")
	if code != 0 {
		t.Fatalf("code = %d, want 0\n%s", code, raw)
	}
	if len(reports) != 1 || reports[0].Target != "composition" {
		t.Fatalf("reports = %+v", reports)
	}
	if len(reports[0].Proofs) != 2 {
		t.Fatalf("proofs = %+v", reports[0].Proofs)
	}
	for _, p := range reports[0].Proofs {
		if p.Result != "proved" {
			t.Errorf("%s: result = %q, want proved (%s)", p.Prove, p.Result, p.Reason)
		}
	}
}

func TestProveShipped72RefutedWithValue(t *testing.T) {
	code, reports, raw := reasonRun(t,
		"-prove", "no-anonymous-yes",
		"-value", "max_input=1000",
		"-system", "../../policies/paper/system-7.2.eacl",
		"-local", "../../policies/paper/local-7.2.eacl")
	if code != 1 {
		t.Fatalf("code = %d, want 1 (refuted)\n%s", code, raw)
	}
	p := reports[0].Proofs[0]
	if p.Result != "refuted" {
		t.Fatalf("result = %q, want refuted", p.Result)
	}
	if len(p.Witnesses) == 0 {
		t.Fatal("refutation without witnesses")
	}
	w := p.Witnesses[0]
	if w.User != "" || w.Decision != "yes" {
		t.Errorf("witness = %+v, want anonymous yes", w)
	}
}

func TestQueryWhoCanShipped71(t *testing.T) {
	code, reports, raw := reasonRun(t,
		"-query", "who-can(apache, *, medium)",
		"-system", "../../policies/paper/system-7.1.eacl",
		"-local", "../../policies/paper/local-7.1.eacl")
	if code != 0 {
		t.Fatalf("code = %d, want 0\n%s", code, raw)
	}
	q := reports[0].Queries[0]
	if !q.Satisfiable || len(q.Principals) != 1 || q.Principals[0] != "user" {
		t.Fatalf("who-can = %+v, want principals [user]", q)
	}
	if len(q.Witnesses) == 0 || q.Witnesses[0].Threat != "medium" {
		t.Fatalf("witnesses = %+v, want a medium-threat witness", q.Witnesses)
	}
}

func TestQueryPositionalFile(t *testing.T) {
	open := writePolicy(t, "pos_access_right apache *\n")
	code, reports, raw := reasonRun(t,
		"-query", "who-can(apache, GET /*)", "-prove", "no-anonymous-yes", open)
	if code != 1 {
		t.Fatalf("code = %d, want 1 (open grant refutes)\n%s", code, raw)
	}
	if reports[0].Target != open {
		t.Errorf("target = %q, want %q", reports[0].Target, open)
	}
	q := reports[0].Queries[0]
	if !q.Satisfiable {
		t.Errorf("who-can unsatisfiable on an open grant: %+v", q)
	}
	if got := reports[0].Proofs[0].Result; got != "refuted" {
		t.Errorf("no-anonymous-yes = %q, want refuted", got)
	}
}

func TestReasonUsageErrors(t *testing.T) {
	clean := writePolicy(t, "pos_access_right apache *\n")
	var out strings.Builder
	if code, err := run([]string{"-query", "who-can(apache)", clean}, &out); err == nil || code != 2 {
		t.Errorf("bad query: code=%d err=%v", code, err)
	}
	out.Reset()
	if code, err := run([]string{"-prove", "nonsense", clean}, &out); err == nil || code != 2 {
		t.Errorf("bad proof name: code=%d err=%v", code, err)
	}
	out.Reset()
	if code, err := run([]string{"-prove", "no-dead-entries", "-value", "max_input", clean}, &out); err == nil || code != 2 {
		t.Errorf("bad -value: code=%d err=%v", code, err)
	}
}

func TestReasonParseFailureSkipsReasoning(t *testing.T) {
	bad := writePolicy(t, "this is not an eacl line\n")
	var out strings.Builder
	code, err := run([]string{"-prove", "no-dead-entries", bad}, &out)
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	if strings.Contains(out.String(), "proofs") {
		t.Errorf("reasoning ran despite a parse failure:\n%s", out.String())
	}
}
