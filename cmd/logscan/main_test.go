package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeLog(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "access.log")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestScanLogWithAttacks(t *testing.T) {
	path := writeLog(t, `10.0.0.66 - - [19/May/2003:12:00:01 +0000] "GET /cgi-bin/phf?Qalias=x" 200 88
10.0.0.1 - - [19/May/2003:12:00:02 +0000] "GET /index.html" 200 512
`)
	var out strings.Builder
	code, err := run([]string{path}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Errorf("exit = %d, want 1 (findings present)", code)
	}
	if !strings.Contains(out.String(), "phf") || !strings.Contains(out.String(), "1 findings") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestScanCleanLog(t *testing.T) {
	path := writeLog(t, `10.0.0.1 - - [19/May/2003:12:00:02 +0000] "GET /index.html" 200 512
`)
	var out strings.Builder
	code, err := run([]string{path}, &out)
	if err != nil || code != 0 {
		t.Errorf("run = %d, %v", code, err)
	}
}

func TestScanErrors(t *testing.T) {
	var out strings.Builder
	if _, err := run(nil, &out); err == nil {
		t.Error("want error for no files")
	}
	if _, err := run([]string{filepath.Join(t.TempDir(), "absent")}, &out); err == nil {
		t.Error("want error for missing file")
	}
}
