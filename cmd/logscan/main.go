// Command logscan is the offline comparator of the paper's section 10
// related work (Almgren, Debar, Dacier, NDSS 2000): it scans Common
// Log Format access logs for attack signatures after the fact. Its
// per-signature report distinguishes attacks the server had already
// served ("executed" — the damage the paper's online integration
// prevents) from ones the server denied.
//
// Usage:
//
//	logscan access.log [more.log ...]
//	gaa-httpd -access-log access.log &  ...  logscan access.log
package main

import (
	"fmt"
	"io"
	"os"

	"gaaapi/internal/ids"
	"gaaapi/internal/logscan"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "logscan:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	if len(args) == 0 {
		return 2, fmt.Errorf("no log files given")
	}
	scanner := logscan.NewScanner(ids.NewDB(ids.DefaultSignatures()...))
	var all []logscan.Finding
	totalLines, totalMalformed := 0, 0
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			return 2, err
		}
		findings, lines, malformed, err := scanner.Scan(f)
		f.Close()
		if err != nil {
			return 2, fmt.Errorf("%s: %w", path, err)
		}
		all = append(all, findings...)
		totalLines += lines
		totalMalformed += malformed
	}

	fmt.Fprintf(out, "%-14s %-8s %-10s %-8s\n", "signature", "total", "executed", "blocked")
	for _, s := range logscan.Summarize(all) {
		fmt.Fprintf(out, "%-14s %-8d %-10d %-8d\n", s.Signature, s.Total, s.Executed, s.Blocked)
	}
	fmt.Fprintf(out, "scanned %d lines (%d malformed), %d findings\n", totalLines, totalMalformed, len(all))

	// Exit 1 when attacks were found, like grep.
	if len(all) > 0 {
		return 1, nil
	}
	return 0, nil
}
