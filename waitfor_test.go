package gaaapi

import (
	"testing"
	"time"
)

// waitFor polls cond every millisecond until it holds or the deadline
// passes; step, when non-nil, runs before each probe to drive whatever
// traffic the condition depends on. Deadline-bounded polling instead of
// fixed sleeps: a slow CI runner gets the whole budget, a fast one
// moves on after one tick. Shared by every e2e test in the package —
// add no per-file copies.
func waitFor(t *testing.T, deadline time.Duration, step func(), cond func() bool) bool {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		if step != nil {
			step()
		}
		if cond() {
			return true
		}
		if time.Now().After(stop) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}
