//go:build race

package gaaapi

// raceEnabled reports whether the race detector is compiled in; the
// bench guard skips under it because instrumentation multiplies
// hot-path wall time far past any real regression signal.
const raceEnabled = true
